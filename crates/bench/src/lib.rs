//! # arrayeq-bench
//!
//! Workload construction shared by the Criterion benches and the
//! `run_experiments` binary that regenerate the paper's evaluation
//! (experiments E1–E12 of `DESIGN.md` / `EXPERIMENTS.md`).
//!
//! The heavy lifting lives in the other crates; this one only assembles
//! (original, transformed) program pairs of controlled size and provides
//! small timing helpers so that every table can be reproduced both through
//! `cargo bench -p arrayeq-bench` and through
//! `cargo run -p arrayeq-bench --bin run_experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arrayeq_core::{verify_programs, CheckOptions, Report};
use arrayeq_lang::ast::Program;
use arrayeq_lang::corpus::{with_size, FIG1_A};
use arrayeq_lang::interp::{Inputs, Interpreter};
use arrayeq_lang::parser::parse_program;
use arrayeq_transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq_transform::random_pipeline;
use std::time::{Duration, Instant};

/// A ready-to-check pair of programs plus a description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in bench/table rows.
    pub name: String,
    /// The original program.
    pub original: Program,
    /// The transformed program (equivalent by construction unless noted).
    pub transformed: Program,
}

impl Workload {
    /// Runs the checker on the pair with the given options.
    ///
    /// # Panics
    ///
    /// Panics if the verification pipeline itself fails (the pairs produced
    /// by this crate are all in the supported class).
    pub fn check(&self, opts: &CheckOptions) -> Report {
        verify_programs(&self.original, &self.transformed, opts)
            .unwrap_or_else(|e| panic!("workload {}: {e}", self.name))
    }
}

/// The Fig. 1 pairs of the paper at its native size (N = 1024).
pub fn fig1_pairs() -> Vec<(String, String, String)> {
    use arrayeq_lang::corpus::*;
    vec![
        ("a-vs-b".into(), FIG1_A.into(), FIG1_B.into()),
        ("a-vs-c".into(), FIG1_A.into(), FIG1_C.into()),
        ("b-vs-c".into(), FIG1_B.into(), FIG1_C.into()),
        ("a-vs-d".into(), FIG1_A.into(), FIG1_D.into()),
    ]
}

/// A Fig. 1(a)-shaped workload with the loop bound set to `n`, transformed by
/// a deterministic random pipeline (experiment E6).
pub fn fig1a_pipeline_at_size(n: i64, steps: usize, seed: u64) -> Workload {
    let original = parse_program(&with_size(FIG1_A, n)).expect("fig1(a) parses");
    let (transformed, _) = random_pipeline(&original, steps, seed);
    Workload {
        name: format!("fig1a-N{n}"),
        original,
        transformed,
    }
}

/// A generated kernel with `layers` statements, transformed by a random
/// pipeline (experiments E5, E7, E9).
pub fn generated_pair(layers: usize, n: i64, seed: u64) -> Workload {
    let cfg = GeneratorConfig {
        n,
        layers,
        seed,
        ..Default::default()
    };
    let original = generate_kernel(&cfg);
    let (transformed, _) = random_pipeline(&original, 2 * layers, seed + 1);
    Workload {
        name: format!("gen-L{layers}-N{n}"),
        original,
        transformed,
    }
}

/// A *wide* multi-output kernel (shared base layer + one chain per output,
/// chains repeating every `distinct_chains` outputs when non-zero) paired
/// with a random transformation pipeline — the PR4 workload shape: the
/// per-output obligations shard across the parallel checker's workers, and
/// the repeated chains are what the rename-invariant tabling keys collapse.
pub fn wide_pair(
    layers: usize,
    outputs: usize,
    distinct_chains: usize,
    n: i64,
    seed: u64,
) -> Workload {
    let mut w = wide_pair_steps(layers, outputs, distinct_chains, n, 4, seed);
    // Keep the historical row name (no pipeline-length suffix) stable for
    // the PR4/PR5 snapshots.
    w.name = format!("wide-L{layers}-O{outputs}-D{distinct_chains}-N{n}");
    w
}

/// [`wide_pair`] with an explicit transformation-pipeline length.
///
/// The default 4 steps leave most chains untouched, so per-output check
/// cost stays near the plain-traversal floor.  The PR6 incremental
/// experiment instead wants every chain non-trivially transformed — the
/// expensive-pair regime where re-checking from scratch actually hurts —
/// which takes a pipeline length proportional to the statement count.
pub fn wide_pair_steps(
    layers: usize,
    outputs: usize,
    distinct_chains: usize,
    n: i64,
    steps: usize,
    seed: u64,
) -> Workload {
    let cfg = GeneratorConfig {
        n,
        layers,
        outputs,
        distinct_chains,
        inputs: 3,
        seed,
        ..Default::default()
    };
    let original = generate_kernel(&cfg);
    let (transformed, _) = random_pipeline(&original, steps, seed + 1);
    Workload {
        name: format!("wide-L{layers}-O{outputs}-D{distinct_chains}-N{n}-S{steps}"),
        original,
        transformed,
    }
}

/// The PR5 algebraic-normalization corpus: pairs that are equivalent
/// exactly through the widened operator algebra — the hand-written
/// factored/expanded, subtraction-shuffle and identity/constant-fold
/// corpus pairs, plus generated algebra-rich kernels rewritten by the
/// `transform::algebraic` rules (distribution, subtraction rotation,
/// identity noise).  Every pair verifies `Equivalent` under the extended
/// method and `NotEquivalent` under the basic method — the pr5 experiment
/// hard-asserts both.
pub fn algebraic_corpus(seed: u64) -> Vec<Workload> {
    use arrayeq_transform::algebraic::{
        distribute_program, insert_identity_noise, shuffle_subtractions,
    };
    let mut out = Vec::new();
    for (name, a, b) in arrayeq_lang::corpus::ALGEBRAIC_PAIRS {
        out.push(Workload {
            name: name.to_owned(),
            original: parse_program(a).expect("algebraic pair parses"),
            transformed: parse_program(b).expect("algebraic pair parses"),
        });
    }
    for s in 0..3u64 {
        let original = generate_kernel(&GeneratorConfig {
            n: 48,
            layers: 3,
            inputs: 3,
            fanin: 3,
            algebra: true,
            seed: seed + s,
            ..Default::default()
        });
        let (distributed, _) = distribute_program(&original);
        out.push(Workload {
            name: format!("gen-distribute-{s}"),
            original: original.clone(),
            transformed: distributed,
        });
        let mut shuffled = original.clone();
        let labels: Vec<String> = original.statements().map(|a| a.label.clone()).collect();
        for label in labels {
            let (next, _) = shuffle_subtractions(&shuffled, &label);
            shuffled = next;
        }
        out.push(Workload {
            name: format!("gen-subshuffle-{s}"),
            original: original.clone(),
            transformed: shuffled,
        });
        let (noised, _) = insert_identity_noise(&original, seed + s);
        out.push(Workload {
            name: format!("gen-identnoise-{s}"),
            original,
            transformed: noised,
        });
    }
    // A rewrite that drew no applicable site leaves the program unchanged;
    // such pairs prove nothing about normalization, so they drop out.
    out.retain(|w| w.original != w.transformed);
    out
}

/// The realistic-kernel suite (experiment E8): every corpus kernel paired
/// with a random transformation pipeline of itself.
pub fn kernel_suite(seed: u64) -> Vec<Workload> {
    arrayeq_lang::corpus::KERNELS
        .iter()
        .map(|(name, src)| {
            let original = parse_program(src).expect("kernel parses");
            let (transformed, _) = random_pipeline(&original, 6, seed);
            Workload {
                name: (*name).to_owned(),
                original,
                transformed,
            }
        })
        .collect()
}

/// One round of the PR3 repeated-verification corpus.
///
/// The *repeated* half is identical in every round — the re-check regime,
/// where a service re-validates the same pair after every pipeline run (CI
/// on an unchanged file, replayed refactoring scripts).  The *perturbed*
/// half keeps each original program but re-transforms it with a
/// round-specific random pipeline — the successive-refactorings regime,
/// where consecutive queries share most sub-computations without being
/// identical.  A shared-session engine should convert both kinds of overlap
/// into cross-query table hits; fresh per-call state cannot.
pub fn pr3_round(round: u64) -> Vec<Workload> {
    let mut out = Vec::new();
    // Repeated: identical workloads every round.
    for layers in [4usize, 8, 16] {
        out.push(generated_pair(layers, 256, 11));
    }
    for (name, a, b) in fig1_pairs().into_iter().take(3) {
        out.push(Workload {
            name,
            original: parse_program(&a).expect("fig1 parses"),
            transformed: parse_program(&b).expect("fig1 parses"),
        });
    }
    // Perturbed: same original, fresh transformation pipeline per round.
    for layers in [4usize, 8] {
        let cfg = GeneratorConfig {
            n: 256,
            layers,
            seed: 77,
            ..Default::default()
        };
        let original = generate_kernel(&cfg);
        let (transformed, _) = random_pipeline(&original, 2 * layers, 9000 + round);
        out.push(Workload {
            name: format!("perturbed-L{layers}-r{round}"),
            original,
            transformed,
        });
    }
    out
}

/// Simulation baseline: executes both programs of a Fig.-1-shaped pair on
/// one input vector and compares outputs.  Returns whether they agreed.
pub fn simulate_fig1_pair(original: &Program, transformed: &Program, n: i64) -> bool {
    let a: Vec<i64> = (0..2 * n + 4).map(|i| 3 * i + 1).collect();
    let b: Vec<i64> = (0..2 * n + 4).map(|i| 7 * i - 5).collect();
    let inputs = Inputs::new()
        .array("A", a)
        .array("B", b)
        .output("C", n as usize);
    let o1 = Interpreter::new(original)
        .run_for_output(&inputs, "C")
        .expect("original runs");
    let o2 = Interpreter::new(transformed)
        .run_for_output(&inputs, "C")
        .expect("transformed runs");
    o1 == o2
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_equivalent_by_construction() {
        let w = generated_pair(3, 64, 5);
        assert!(w.check(&CheckOptions::default()).is_equivalent());
        let w = fig1a_pipeline_at_size(64, 4, 2);
        assert!(w.check(&CheckOptions::default()).is_equivalent());
    }

    #[test]
    fn kernel_suite_covers_every_corpus_kernel() {
        let suite = kernel_suite(1);
        assert_eq!(suite.len(), arrayeq_lang::corpus::KERNELS.len());
    }

    #[test]
    fn simulation_agrees_for_equivalent_pairs() {
        let w = fig1a_pipeline_at_size(64, 4, 2);
        assert!(simulate_fig1_pair(&w.original, &w.transformed, 64));
    }
}
