//! E5: checker time vs ADDG size (number of statements).
use arrayeq_bench::generated_pair;
use arrayeq_core::CheckOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_addg_size");
    g.sample_size(10);
    for layers in [2usize, 4, 8, 16] {
        let w = generated_pair(layers, 256, 11);
        g.bench_with_input(BenchmarkId::from_parameter(layers + 1), &w, |b, w| {
            b.iter(|| w.check(&CheckOptions::default()))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
