//! E12: micro-benchmarks of the omega substrate.
use arrayeq_omega::Relation;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("omega_ops");
    g.sample_size(20);
    let m1 = Relation::parse("{ [k] -> [2k] : 0 <= k < 1024 }").unwrap();
    let m2 = Relation::parse("{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }").unwrap();
    let shift = Relation::parse("{ [i] -> [i+1] : 0 <= i < 1024 }").unwrap();
    g.bench_function("compose", |b| b.iter(|| m1.compose(&m2).unwrap()));
    g.bench_function("is_equal", |b| b.iter(|| m1.is_equal(&m1).unwrap()));
    g.bench_function("subtract", |b| b.iter(|| m1.subtract(&m2).unwrap()));
    g.bench_function("transitive_closure", |b| b.iter(|| shift.transitive_closure().unwrap()));
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
