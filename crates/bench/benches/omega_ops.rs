//! E12: micro-benchmarks of the omega substrate.
use arrayeq_omega::Relation;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("omega_ops");
    g.sample_size(20);
    let m1 = Relation::parse("{ [k] -> [2k] : 0 <= k < 1024 }").unwrap();
    let m2 =
        Relation::parse("{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }")
            .unwrap();
    let shift = Relation::parse("{ [i] -> [i+1] : 0 <= i < 1024 }").unwrap();
    g.bench_function("compose", |b| b.iter(|| m1.compose(&m2).unwrap()));
    g.bench_function("is_equal", |b| b.iter(|| m1.is_equal(&m1).unwrap()));
    g.bench_function("subtract", |b| b.iter(|| m1.subtract(&m2).unwrap()));
    g.bench_function("transitive_closure", |b| {
        b.iter(|| shift.transitive_closure().unwrap())
    });
    g.finish();

    // The two tabling-key constructions the checker can use: cached
    // structural hashes (default) vs the legacy canonical-string rendering.
    let mut g = c.benchmark_group("tabling_keys");
    g.sample_size(20);
    g.bench_function("structural_hash_cold", |b| {
        // Rebuilding from the parsed conjuncts gives a relation with an
        // empty hash cache without paying for text parsing in the loop.
        let space = m2.space().clone();
        let conjuncts = m2.conjuncts().to_vec();
        b.iter(|| {
            let r = Relation::from_conjuncts(space.clone(), conjuncts.clone());
            black_box(r.structural_hash())
        })
    });
    g.bench_function("structural_hash_cached", |b| {
        let r = m2.clone();
        r.structural_hash();
        b.iter(|| black_box(r.structural_hash()))
    });
    g.bench_function("canonical_key_string", |b| {
        b.iter(|| black_box(m2.canonical_key()))
    });
    g.bench_function("simplified_deep_memoised", |b| {
        // Repeated deep simplification of an identical relation is the shape
        // the conjunct-level feasibility memo accelerates.
        b.iter(|| black_box(m2.simplified(true)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
