//! E4: cost of producing diagnostics for the erroneous Fig. 1(d).
use arrayeq_core::{verify_source, CheckOptions};
use arrayeq_lang::corpus::{FIG1_A, FIG1_D};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("diagnostics");
    g.sample_size(10);
    g.bench_function("a_vs_d_with_diagnostics", |b| {
        b.iter(|| {
            let r = verify_source(FIG1_A, FIG1_D, &CheckOptions::default()).unwrap();
            assert!(!r.is_equivalent());
            r.blame()
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
