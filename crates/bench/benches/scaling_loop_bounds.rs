//! E6: checker (closed form) vs simulation (linear in N) as loop bounds grow.
use arrayeq_bench::{fig1a_pipeline_at_size, simulate_fig1_pair};
use arrayeq_core::CheckOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_loop_bounds");
    g.sample_size(10);
    for n in [256i64, 1024, 4096, 16384] {
        let w = fig1a_pipeline_at_size(n, 4, 3);
        g.bench_with_input(BenchmarkId::new("checker", n), &w, |b, w| {
            b.iter(|| w.check(&CheckOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("simulation", n), &w, |b, w| {
            b.iter(|| simulate_fig1_pair(&w.original, &w.transformed, n))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
