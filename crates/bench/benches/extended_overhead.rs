//! E7: extended-method overhead on pairs without algebraic transformations.
use arrayeq_bench::generated_pair;
use arrayeq_core::CheckOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("extended_overhead");
    g.sample_size(10);
    for layers in [2usize, 4, 8] {
        let w = generated_pair(layers, 256, 17);
        g.bench_with_input(BenchmarkId::new("basic", layers + 1), &w, |b, w| {
            b.iter(|| w.check(&CheckOptions::basic()))
        });
        g.bench_with_input(BenchmarkId::new("extended", layers + 1), &w, |b, w| {
            b.iter(|| w.check(&CheckOptions::default()))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
