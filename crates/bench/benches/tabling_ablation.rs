//! E9: effect of tabling established sub-equivalences.
use arrayeq_bench::generated_pair;
use arrayeq_core::CheckOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tabling_ablation");
    g.sample_size(10);
    for layers in [4usize, 8, 16] {
        let w = generated_pair(layers, 256, 29);
        g.bench_with_input(BenchmarkId::new("tabling", layers + 1), &w, |b, w| {
            b.iter(|| w.check(&CheckOptions::default()))
        });
        g.bench_with_input(
            BenchmarkId::new("tabling_string_keys", layers + 1),
            &w,
            |b, w| b.iter(|| w.check(&CheckOptions::default().with_string_table_keys())),
        );
        g.bench_with_input(BenchmarkId::new("no_tabling", layers + 1), &w, |b, w| {
            b.iter(|| w.check(&CheckOptions::default().without_tabling()))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
