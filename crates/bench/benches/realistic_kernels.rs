//! E8: end-to-end verification of the realistic kernel suite.
use arrayeq_bench::kernel_suite;
use arrayeq_core::CheckOptions;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("realistic_kernels");
    g.sample_size(10);
    for w in kernel_suite(23) {
        g.bench_function(&w.name, |b| b.iter(|| w.check(&CheckOptions::default())));
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
