//! E10: recurrence (cyclic ADDG) handling.
use arrayeq_core::{verify_source, CheckOptions};
use arrayeq_lang::corpus::KERNEL_RECURRENCE;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("recurrences");
    g.sample_size(10);
    g.bench_function("scan_self", |b| {
        b.iter(|| {
            verify_source(
                KERNEL_RECURRENCE,
                KERNEL_RECURRENCE,
                &CheckOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
