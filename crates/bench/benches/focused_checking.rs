//! E11: focused checking vs a full check.
use arrayeq_core::{verify_source, CheckOptions, Focus};
use arrayeq_lang::corpus::{FIG1_A, FIG1_B};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("focused_checking");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| verify_source(FIG1_A, FIG1_B, &CheckOptions::default()).unwrap())
    });
    let opts = CheckOptions::default().with_focus(Focus {
        outputs: vec!["C".into()],
        intermediate_pairs: vec![("tmp".into(), "tmp".into()), ("buf".into(), "buf".into())],
    });
    g.bench_function("focused", |b| {
        b.iter(|| verify_source(FIG1_A, FIG1_B, &opts).unwrap())
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
