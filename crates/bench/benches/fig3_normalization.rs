//! E2: cost of the flattening + matching normalisation on algebraic pairs.
use arrayeq_core::{verify_source, CheckOptions};
use arrayeq_lang::corpus::{FIG1_A, FIG1_C};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_normalization");
    g.sample_size(10);
    g.bench_function("a_vs_c_extended", |b| {
        b.iter(|| verify_source(FIG1_A, FIG1_C, &CheckOptions::default()).unwrap())
    });
    g.bench_function("a_vs_c_basic_rejects", |b| {
        b.iter(|| verify_source(FIG1_A, FIG1_C, &CheckOptions::basic()).unwrap())
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
