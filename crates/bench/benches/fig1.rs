//! E1: verification time for the Fig. 1 program pairs.
use arrayeq_bench::fig1_pairs;
use arrayeq_core::{verify_source, CheckOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    for (name, a, b) in fig1_pairs() {
        g.bench_function(&name, |bench| {
            bench.iter(|| verify_source(&a, &b, &CheckOptions::default()).unwrap())
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
