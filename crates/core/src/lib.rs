//! # arrayeq-core
//!
//! The equivalence checker of the DATE 2005 paper *"Functional Equivalence
//! Checking for Verification of Algebraic Transformations on Array-Intensive
//! Source Code"* — the primary contribution this repository reproduces.
//!
//! Given two program functions in the restricted class (original and
//! transformed), the checker establishes input-output equivalence by a
//! synchronized traversal of their ADDGs, verifying the paper's sufficient
//! condition on every pair of corresponding data-dependence paths:
//!
//! 1. the **same computation** (operator sequence) is applied, and
//! 2. the **output-input mappings** (compositions of dependency mappings
//!    along the paths) are identical integer relations.
//!
//! The *basic method* ([`Method::Basic`]) handles expression propagations and
//! global loop transformations.  The *extended method* ([`Method::Extended`],
//! the default) additionally normalises at operator nodes that are declared
//! associative and/or commutative — **flattening** associative chains and
//! **matching** commutative operands by their output-input mappings — which
//! makes global algebraic transformations checkable in the same pass.
//!
//! On failure, the checker produces [`Diagnostic`]s in the spirit of
//! Section 6.1: the mismatching statements, the index expressions involved,
//! the differing mappings, and a heuristic blame assignment to the variable
//! common to the failing paths.
//!
//! ```
//! use arrayeq_core::{verify_source, CheckOptions};
//! use arrayeq_lang::corpus::{FIG1_A, FIG1_C, FIG1_D};
//!
//! # fn main() -> Result<(), arrayeq_core::CoreError> {
//! // (a) vs (c): related by loop, propagation AND algebraic transformations.
//! let report = verify_source(FIG1_A, FIG1_C, &CheckOptions::default())?;
//! assert!(report.is_equivalent());
//!
//! // (a) vs (d): the erroneous transformation is caught and diagnosed.
//! let report = verify_source(FIG1_A, FIG1_D, &CheckOptions::default())?;
//! assert!(!report.is_equivalent());
//! assert!(!report.diagnostics.is_empty());
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod context;
mod diagnostics;
mod normalize;
mod operators;
mod parallel;
mod report;

pub use checker::{
    output_root_key, verify_addgs, verify_addgs_with, verify_addgs_with_fps, verify_programs,
    verify_programs_with, verify_source, CheckOptions, Focus, Method,
};
pub use context::{
    BaselineProofs, BudgetExhausted, CancelToken, CheckContext, SharedEquivalenceTable,
    SharedTableKey, TableProvenance,
};
pub use diagnostics::{Diagnostic, DiagnosticKind};
pub use operators::{OperatorClass, OperatorProperties};
#[doc(hidden)]
pub use parallel::{inject_arith_overflow_once, inject_worker_panic_on_task};
pub use report::{CheckStats, Report, Verdict, Witness};

use std::fmt;

/// Errors produced by the equivalence checker pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The frontend failed (parse error, class violation, def-use violation).
    Lang(arrayeq_lang::LangError),
    /// ADDG extraction failed.
    Addg(arrayeq_addg::AddgError),
    /// The omega layer failed during mapping manipulation.
    Omega(arrayeq_omega::OmegaError),
    /// The two functions cannot be compared (e.g. different output arrays).
    Incomparable {
        /// Description of the interface mismatch.
        message: String,
    },
    /// The checker gave up (resource limit); the result is inconclusive.
    ResourceLimit {
        /// Description of the limit that was hit.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(e) => write!(f, "frontend error: {e}"),
            CoreError::Addg(e) => write!(f, "ADDG error: {e}"),
            CoreError::Omega(e) => write!(f, "integer-set error: {e}"),
            CoreError::Incomparable { message } => write!(f, "functions not comparable: {message}"),
            CoreError::ResourceLimit { message } => write!(f, "resource limit: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lang(e) => Some(e),
            CoreError::Addg(e) => Some(e),
            CoreError::Omega(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arrayeq_lang::LangError> for CoreError {
    fn from(e: arrayeq_lang::LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<arrayeq_addg::AddgError> for CoreError {
    fn from(e: arrayeq_addg::AddgError) -> Self {
        CoreError::Addg(e)
    }
}

impl From<arrayeq_omega::OmegaError> for CoreError {
    fn from(e: arrayeq_omega::OmegaError) -> Self {
        CoreError::Omega(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
