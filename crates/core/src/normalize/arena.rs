//! The hash-consed term arena.
//!
//! Flattened terms ([`FlatTerm`]) intern into dense integer [`TermId`]s.
//! The interning key is *rename-invariant* and *cross-graph comparable*: a
//! term is identified by its integer coefficient plus the sorted multiset of
//! its factors' `(content fingerprint, mapping structural hash)` pairs —
//! the same vocabulary as the PR4 tabling keys ([`arrayeq_addg::fingerprints`]
//! names a position by the computation below it, and
//! `Relation::structural_hash` is canonical under iterator/existential
//! renaming).  Two terms interning to the same id therefore present
//! identical sub-computations with identical output-current mappings, no
//! matter which of the two graphs they came from or at which statement they
//! live — so the matcher's hot path degrades from "re-walk both ADDG
//! chains and compare relations" to one `u32` comparison.
//!
//! On top of interning the arena carries the **match memo**: the outcome of
//! every speculative term-pair equivalence check, keyed by the two term
//! ids.  Matching the same pair again — the common case across region
//! pieces of one chain and across repeated chains — is a table lookup.
//! Entries are only recorded for assumption-free proofs (the checker's
//! no-tabling-under-recurrence-assumption guard applies here unchanged).
//!
//! Debug builds shadow every id with the canonical renderings of the
//! factor mappings and count 64-bit collisions, mirroring the tabling
//! cache's paranoia check.

use super::flatten::FlatTerm;
use crate::report::CheckStats;
use arrayeq_addg::term_fingerprint;
use std::collections::HashMap;

/// Dense handle of an interned term.  Equality of ids implies structural
/// equality of the terms (up to 64-bit hash collisions — the same trust
/// boundary as the tabling keys).
pub(crate) type TermId = u32;

/// Hash-consing arena for flattened terms plus the matched-pair memo.
#[derive(Debug, Default)]
pub(crate) struct TermArena {
    /// Term fingerprint ([`arrayeq_addg::term_fingerprint`]) → dense id.
    ids: HashMap<u64, TermId>,
    /// Outcomes of assumption-free term-pair equivalence checks.
    match_memo: HashMap<(TermId, TermId), bool>,
    /// Canonical factor renderings per id (debug builds): intern hits whose
    /// canonical forms differ from the stored ones are genuine 64-bit
    /// collisions and are counted in [`CheckStats::hash_collisions`].
    #[cfg(debug_assertions)]
    shadow: Vec<Vec<String>>,
}

impl TermArena {
    /// Interns a term by its rename-invariant content key, returning the
    /// existing id when an identical term was interned before.
    ///
    /// `factor_keys` carries one `(position fingerprint, mapping structural
    /// hash)` pair per factor (the caller resolves fingerprints per side,
    /// since original and transformed positions index different fingerprint
    /// tables — the *values* are cross-graph comparable).
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub(crate) fn intern(
        &mut self,
        term: &FlatTerm,
        factor_keys: Vec<(u64, u64)>,
        stats: &mut CheckStats,
    ) -> TermId {
        let key = term_fingerprint(term.coeff, &factor_keys);
        stats.arena_interns += 1;
        let next = self.ids.len() as TermId;
        match self.ids.get(&key) {
            Some(&id) => {
                stats.arena_hits += 1;
                #[cfg(debug_assertions)]
                self.check_for_collision(id, term, stats);
                id
            }
            None => {
                self.ids.insert(key, next);
                #[cfg(debug_assertions)]
                self.shadow.push(Self::canonical(term));
                next
            }
        }
    }

    /// The memoised outcome of matching this id pair, if recorded.
    pub(crate) fn lookup_match(&self, a: TermId, b: TermId) -> Option<bool> {
        self.match_memo.get(&(a, b)).copied()
    }

    /// Records the outcome of an assumption-free term-pair check.
    pub(crate) fn record_match(&mut self, a: TermId, b: TermId, matched: bool) {
        self.match_memo.insert((a, b), matched);
    }

    /// The canonical (rename-normal, fully rendered) factor forms backing
    /// the debug collision check.
    #[cfg(debug_assertions)]
    fn canonical(term: &FlatTerm) -> Vec<String> {
        let mut out: Vec<String> = term.factors.iter().map(|f| f.map.canonical_key()).collect();
        out.sort_unstable();
        out.insert(0, format!("coeff {}", term.coeff));
        out
    }

    /// Debug cross-check: an intern hit whose canonical factor mappings
    /// differ from the id's stored ones means two distinct terms collided
    /// on the same 64-bit key.
    #[cfg(debug_assertions)]
    fn check_for_collision(&self, id: TermId, term: &FlatTerm, stats: &mut CheckStats) {
        let fresh = Self::canonical(term);
        if self.shadow[id as usize] != fresh {
            stats.hash_collisions += 1;
            debug_assert!(false, "term-arena hash collision at id {id}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CheckStats;
    use arrayeq_omega::Set;
    use proptest::prelude::*;

    /// A term whose single factor is described by one `(fp, maphash)` key.
    /// The arena only reads `coeff`, the precomputed keys and (in debug
    /// builds) the factor mappings, so a canonical placeholder relation per
    /// distinct key keeps the shadow consistent with the key.
    fn term(coeff: i64, keys: &[(u64, u64)]) -> FlatTerm {
        use super::super::flatten::Factor;
        use crate::checker::Pos;
        let factors = keys
            .iter()
            .map(|&(fp, mh)| Factor {
                pos: Pos::Node(fp as usize),
                // One distinct, trivially-parsable relation per map hash so
                // equal keys always carry equal canonical forms.
                map: arrayeq_omega::Relation::parse(&format!(
                    "{{ [i] -> [i] : 0 <= i < {} }}",
                    (mh % 97) + 1
                ))
                .unwrap(),
                trail: Vec::new(),
            })
            .collect();
        FlatTerm {
            coeff,
            factors,
            domain: Set::parse("{ [i] : 0 <= i < 4 }").unwrap(),
            trail: Vec::new(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Interning the same content twice yields the same id and counts
        /// a dedup hit; different coefficients or factor keys split ids.
        #[test]
        fn intern_is_idempotent_and_content_keyed(
            coeff in -4i64..5, fp in 0u64..6, mh in 0u64..6, other in 0u64..6,
        ) {
            prop_assume!(coeff != 0);
            let mut arena = TermArena::default();
            let mut stats = CheckStats::default();
            let t = term(coeff, &[(fp, mh)]);
            let id1 = arena.intern(&t, vec![(fp, mh)], &mut stats);
            let id2 = arena.intern(&t, vec![(fp, mh)], &mut stats);
            prop_assert_eq!(id1, id2);
            prop_assert_eq!(stats.arena_interns, 2);
            prop_assert_eq!(stats.arena_hits, 1);
            prop_assert_eq!(stats.hash_collisions, 0);

            let shifted = term(coeff + 1, &[(fp, mh)]);
            let id3 = arena.intern(&shifted, vec![(fp, mh)], &mut stats);
            prop_assert!(id1 != id3, "coefficient is part of the identity");
            let moved = term(coeff, &[(fp, mh + 101 + other)]);
            let id4 = arena.intern(&moved, vec![(fp, mh + 101 + other)], &mut stats);
            prop_assert!(id1 != id4, "factor keys are part of the identity");
        }

        /// Factor multisets are order-free: permuting the keys (and the
        /// factors backing them) interns to the same id.
        #[test]
        fn intern_ignores_factor_order(
            a_fp in 0u64..5, a_mh in 0u64..5, b_fp in 5u64..10, b_mh in 5u64..10,
        ) {
            let mut arena = TermArena::default();
            let mut stats = CheckStats::default();
            let fwd = term(2, &[(a_fp, a_mh), (b_fp, b_mh)]);
            let rev = term(2, &[(b_fp, b_mh), (a_fp, a_mh)]);
            let id1 = arena.intern(&fwd, vec![(a_fp, a_mh), (b_fp, b_mh)], &mut stats);
            let id2 = arena.intern(&rev, vec![(b_fp, b_mh), (a_fp, a_mh)], &mut stats);
            prop_assert_eq!(id1, id2);
            prop_assert_eq!(stats.hash_collisions, 0);
        }

        /// The match memo is a function of the id pair: recorded verdicts
        /// come back verbatim, unrecorded pairs miss.
        #[test]
        fn match_memo_round_trips(a in 0u64..8, b in 0u64..8, verdict in 0u64..2) {
            let (a, b) = (a as TermId, b as TermId);
            let mut arena = TermArena::default();
            prop_assert_eq!(arena.lookup_match(a, b), None);
            arena.record_match(a, b, verdict == 1);
            prop_assert_eq!(arena.lookup_match(a, b), Some(verdict == 1));
            if a != b {
                prop_assert_eq!(arena.lookup_match(b, a), None);
            }
        }
    }

    /// Debug builds verify structural equality behind id equality: interning
    /// a *different* canonical form under a forced identical key is exactly
    /// a hash collision and must be counted.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "term-arena hash collision")]
    fn debug_shadow_flags_forced_collisions() {
        let mut arena = TermArena::default();
        let mut stats = CheckStats::default();
        let t1 = term(1, &[(7, 7)]);
        let mut t2 = term(1, &[(7, 7)]);
        // Same key, different canonical mapping behind it: a forced 64-bit
        // collision (cannot arise from honest keys, which include the
        // mapping's structural hash).
        t2.factors[0].map =
            arrayeq_omega::Relation::parse("{ [i] -> [i + 1] : 0 <= i < 3 }").unwrap();
        arena.intern(&t1, vec![(7, 7)], &mut stats);
        arena.intern(&t2, vec![(7, 7)], &mut stats);
    }
}
