//! Flattening (Fig. 4 of the paper, widened by the operator algebra).
//!
//! Flattening walks the chain rooted at an operator node — looking through
//! `Access` compositions and intermediate variables exactly like the
//! synchronized traversal — and collects [`FlatTerm`]s: `coefficient ×
//! product-of-factors` with the accumulated output-current mappings.  The
//! paper's flattening is the special case where every term is `1 × (one
//! position)`; the algebra adds signs (inverse folding of `-`/negation),
//! folded constants, dropped identities, annihilated products and one-level
//! distribution of `*` over `+` (see the [`crate::normalize`] module docs).

use crate::checker::{Checker, Pos};
use crate::Result;
use arrayeq_addg::{Node, NodeId, OperatorKind};
use arrayeq_omega::{Relation, Set};

/// One non-constant factor of a flattened term: a traversal position with
/// its accumulated output-current mapping and the statement trail that led
/// there (for diagnostics).
#[derive(Debug, Clone)]
pub(crate) struct Factor {
    pub pos: Pos,
    pub map: Relation,
    pub trail: Vec<String>,
}

/// One flattened term: `coeff · Π factors` over `domain`.
///
/// * A plain chain operand (the paper's case) is `coeff = ±1` with one
///   factor; the sign comes from inverse folding.
/// * A constant operand folds to `coeff = value` with **no** factors.
/// * A product inside a `+` chain decomposes into its factor multiset with
///   the constant factors folded into `coeff` (`2·a·b` → `coeff 2`,
///   factors `{a, b}`).
///
/// `domain` is the part of the output space on which the term is present —
/// region splitting partitions the output domain so every term is fully
/// present or fully absent on each piece.
#[derive(Debug, Clone)]
pub(crate) struct FlatTerm {
    pub coeff: i64,
    pub factors: Vec<Factor>,
    pub domain: Set,
    /// Statement trail at the term's emission point (diagnostics).
    pub trail: Vec<String>,
}

impl FlatTerm {
    /// A pure-constant term.
    fn constant(coeff: i64, domain: Set, trail: Vec<String>) -> FlatTerm {
        FlatTerm {
            coeff,
            factors: Vec::new(),
            domain,
            trail,
        }
    }
}

/// The domain of a term: the intersection of its factors' mapping domains
/// (the base domain when there are no factors).
fn term_domain(base: Set, factors: &[Factor]) -> Result<Set> {
    match factors {
        [] => Ok(base),
        [only] => Ok(only.map.domain()),
        many => {
            let mut dom = many[0].map.domain();
            for f in &many[1..] {
                dom = dom.intersect(&f.map.domain())?.simplified();
            }
            Ok(dom)
        }
    }
}

fn with_stmt_owned(trail: &[String], stmt: &str) -> Vec<String> {
    crate::checker::with_stmt(trail, stmt)
}

/// Evaluates a fully-constant operator subtree (`(2 + 1)`, `-(4)`, `2·3`)
/// to its value; `None` as soon as an array read, call or division is
/// involved.  Purely syntactic — no mappings, no look-through — so it is
/// sound on any domain.
fn const_eval(g: &arrayeq_addg::Addg, n: NodeId) -> Option<i64> {
    match g.node(n) {
        Node::Const { value, .. } => Some(*value),
        Node::Operator { kind, operands, .. } => match kind {
            OperatorKind::Add => {
                Some(const_eval(g, operands[0])?.wrapping_add(const_eval(g, operands[1])?))
            }
            OperatorKind::Sub => {
                Some(const_eval(g, operands[0])?.wrapping_sub(const_eval(g, operands[1])?))
            }
            OperatorKind::Mul => {
                Some(const_eval(g, operands[0])?.wrapping_mul(const_eval(g, operands[1])?))
            }
            OperatorKind::Neg => Some(const_eval(g, operands[0])?.wrapping_neg()),
            OperatorKind::Div | OperatorKind::Call(_) => None,
        },
        Node::Access { .. } | Node::Array { .. } => None,
    }
}

impl<'x> Checker<'x> {
    /// Flattens the chain of `family` rooted at `pos` into `out`.
    ///
    /// `sign` is the additive sign accumulated through inverse folding
    /// (always `1` outside the `+` family); `root` marks the chain's root
    /// node, which expands one operand level even when the family is only
    /// commutative (deeper same-operator nodes require associativity, as in
    /// the paper).
    ///
    /// Returns `false` when a budget tripped mid-flatten (the caller's
    /// verdict is already inconclusive then).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flatten_family(
        &mut self,
        original_side: bool,
        family: &OperatorKind,
        pos: Pos,
        map: Relation,
        trail: Vec<String>,
        sign: i64,
        root: bool,
        out: &mut Vec<FlatTerm>,
    ) -> Result<bool> {
        if !self.budget() {
            return Ok(false);
        }
        if map.is_empty() {
            return Ok(true);
        }
        let g = if original_side { self.a } else { self.b };
        let class = self.opts.operators.class_of(family);
        let add = self.opts.operators.class_of(&OperatorKind::Add);
        let mul = self.opts.operators.class_of(&OperatorKind::Mul);
        let additive = matches!(family, OperatorKind::Add);
        match pos {
            Pos::Node(n) => match g.node(n).clone() {
                // The chain's own operator: expand the operand level.  The
                // root always expands (that is what entering the algebraic
                // path means); deeper same-operator nodes flatten through
                // only under associativity.
                Node::Operator {
                    kind,
                    operands,
                    statement,
                } if kind == *family && (class.associative || root) => {
                    for child in operands {
                        self.flatten_family(
                            original_side,
                            family,
                            Pos::Node(child),
                            map.clone(),
                            with_stmt_owned(&trail, &statement),
                            sign,
                            false,
                            out,
                        )?;
                    }
                    Ok(true)
                }
                // Inverse folding: `a - b` is `a + (-1)·b`, `-a` is `(-1)·a`.
                Node::Operator {
                    kind: OperatorKind::Sub,
                    operands,
                    statement,
                } if additive && add.is_ac() => {
                    let t = with_stmt_owned(&trail, &statement);
                    self.flatten_family(
                        original_side,
                        family,
                        Pos::Node(operands[0]),
                        map.clone(),
                        t.clone(),
                        sign,
                        false,
                        out,
                    )?;
                    self.flatten_family(
                        original_side,
                        family,
                        Pos::Node(operands[1]),
                        map,
                        t,
                        sign.wrapping_neg(),
                        false,
                        out,
                    )?;
                    Ok(true)
                }
                Node::Operator {
                    kind: OperatorKind::Neg,
                    operands,
                    statement,
                } if additive && add.is_ac() => self.flatten_family(
                    original_side,
                    family,
                    Pos::Node(operands[0]),
                    map,
                    with_stmt_owned(&trail, &statement),
                    sign.wrapping_neg(),
                    false,
                    out,
                ),
                // A product inside a `+` chain: decompose into factors with
                // folded constant coefficient, distributing one level over
                // an additive operand when one is present.
                Node::Operator {
                    kind: OperatorKind::Mul,
                    ..
                } if additive && add.is_ac() && mul.is_ac() => {
                    self.flatten_product_term(original_side, n, map, trail, sign, out)
                }
                // Negation inside a `*` chain is a constant `-1` factor.
                Node::Operator {
                    kind: OperatorKind::Neg,
                    operands,
                    statement,
                } if matches!(family, OperatorKind::Mul) && mul.is_ac() => {
                    out.push(FlatTerm::constant(-1, map.domain(), trail.clone()));
                    self.flatten_family(
                        original_side,
                        family,
                        Pos::Node(operands[0]),
                        map,
                        with_stmt_owned(&trail, &statement),
                        sign,
                        false,
                        out,
                    )
                }
                // Constants fold into the chain (identity operands fold to
                // the neutral contribution and vanish; see the matcher's
                // per-piece constant comparison).
                Node::Const { value, .. } if additive && add.is_ac() => {
                    let c = sign.wrapping_mul(value);
                    if c != 0 {
                        out.push(FlatTerm::constant(c, map.domain(), trail));
                    }
                    Ok(true)
                }
                Node::Const { value, .. } if matches!(family, OperatorKind::Mul) && mul.is_ac() => {
                    out.push(FlatTerm::constant(value, map.domain(), trail));
                    Ok(true)
                }
                // Access: compose through the dependency mapping and
                // continue at the array position (the paper's look-through).
                Node::Access {
                    array,
                    mapping,
                    statement,
                    ..
                } => {
                    self.stats.compositions += 1;
                    let new_map = {
                        let _span = arrayeq_trace::span("compose");
                        let t0 = arrayeq_trace::metrics_timer();
                        let m = map.compose(&mapping)?.simplified(true);
                        arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Composition, t0);
                        m
                    };
                    self.flatten_family(
                        original_side,
                        family,
                        Pos::Array(array),
                        new_map,
                        with_stmt_owned(&trail, &statement),
                        sign,
                        false,
                        out,
                    )?;
                    Ok(true)
                }
                // Any other node is an opaque operand of the chain.
                _ => {
                    let factor = Factor {
                        pos: Pos::Node(n),
                        map,
                        trail: trail.clone(),
                    };
                    let domain = factor.map.domain();
                    out.push(FlatTerm {
                        coeff: sign,
                        factors: vec![factor],
                        domain,
                        trail,
                    });
                    Ok(true)
                }
            },
            Pos::Array(v) => {
                let is_input = g.is_input(&v);
                let is_recurrent = g.recurrence_arrays().contains(&v);
                if is_input || is_recurrent {
                    let factor = Factor {
                        pos: Pos::Array(v),
                        map,
                        trail: trail.clone(),
                    };
                    let domain = factor.map.domain();
                    out.push(FlatTerm {
                        coeff: sign,
                        factors: vec![factor],
                        domain,
                        trail,
                    });
                    return Ok(true);
                }
                // Look through the intermediate variable: continue
                // flattening into each definition whose elements the
                // mapping reaches (non-chain definition roots land in the
                // opaque-operand arm above).
                let defs: Vec<_> = g.definitions(&v).to_vec();
                for def in defs {
                    let sub = map.restrict_range(&def.elements)?.simplified(true);
                    if sub.is_empty() {
                        continue;
                    }
                    self.flatten_family(
                        original_side,
                        family,
                        Pos::Node(def.root),
                        sub,
                        with_stmt_owned(&trail, &def.statement),
                        sign,
                        false,
                        out,
                    )?;
                }
                Ok(true)
            }
        }
    }

    /// Flattens a `*` node encountered inside a `+` chain into one (or,
    /// when distributing, several) product terms.
    fn flatten_product_term(
        &mut self,
        original_side: bool,
        n: NodeId,
        map: Relation,
        trail: Vec<String>,
        sign: i64,
        out: &mut Vec<FlatTerm>,
    ) -> Result<bool> {
        let mut coeff = sign;
        let mut factors = Vec::new();
        let mut distribute = None;
        if !self.flatten_product(
            original_side,
            n,
            &map,
            &trail,
            &mut coeff,
            &mut factors,
            &mut distribute,
        )? {
            return Ok(false);
        }
        match distribute {
            // One-level distribution: `m · (u ± v ± …)` contributes one
            // term `m·u`, `±m·v`, … per additive operand of the chain.
            Some((add_node, add_map, add_trail)) => {
                let mut inner = Vec::new();
                self.flatten_family(
                    original_side,
                    &OperatorKind::Add,
                    Pos::Node(add_node),
                    add_map,
                    add_trail,
                    1,
                    true,
                    &mut inner,
                )?;
                for t in inner {
                    let c = t.coeff.wrapping_mul(coeff);
                    if c == 0 {
                        continue; // annihilated: contributes the `+` identity
                    }
                    let mut fs = factors.clone();
                    fs.extend(t.factors);
                    let domain = term_domain(t.domain, &fs)?;
                    out.push(FlatTerm {
                        coeff: c,
                        factors: fs,
                        domain,
                        trail: t.trail,
                    });
                }
                Ok(true)
            }
            None => {
                if coeff == 0 {
                    return Ok(true); // `x·0` inside a sum: identity, vanishes
                }
                if factors.is_empty() {
                    out.push(FlatTerm::constant(coeff, map.domain(), trail));
                    return Ok(true);
                }
                let domain = term_domain(map.domain(), &factors)?;
                out.push(FlatTerm {
                    coeff,
                    factors,
                    domain,
                    trail,
                });
                Ok(true)
            }
        }
    }

    /// Collects the factor multiset of a product: constant factors fold
    /// into `coeff`, negation flips its sign, the *first* additive operand
    /// is remembered for one-level distribution, and everything else —
    /// including a second additive operand — stays an opaque factor.
    /// `Access` operands compose through their dependency mapping and look
    /// through *single-definition* intermediates (multi-definition arrays
    /// stay opaque factors: their piecewise structure belongs to the
    /// recursive traversal, not the product decomposition).
    #[allow(clippy::too_many_arguments)]
    fn flatten_product(
        &mut self,
        original_side: bool,
        n: NodeId,
        map: &Relation,
        trail: &[String],
        coeff: &mut i64,
        factors: &mut Vec<Factor>,
        distribute: &mut Option<(NodeId, Relation, Vec<String>)>,
    ) -> Result<bool> {
        if !self.budget() {
            return Ok(false);
        }
        let g = if original_side { self.a } else { self.b };
        match g.node(n).clone() {
            Node::Operator {
                kind: OperatorKind::Mul,
                operands,
                statement,
            } => {
                let t = with_stmt_owned(trail, &statement);
                for child in operands {
                    if !self.flatten_product(
                        original_side,
                        child,
                        map,
                        &t,
                        coeff,
                        factors,
                        distribute,
                    )? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Node::Operator {
                kind: OperatorKind::Neg,
                operands,
                statement,
            } => {
                *coeff = coeff.wrapping_neg();
                self.flatten_product(
                    original_side,
                    operands[0],
                    map,
                    &with_stmt_owned(trail, &statement),
                    coeff,
                    factors,
                    distribute,
                )
            }
            Node::Operator {
                kind: OperatorKind::Add | OperatorKind::Sub,
                ..
            } => {
                // A fully-constant subtree (`(2 + 1)·x`) evaluates into the
                // coefficient — distributing it would split one `3·x` term
                // into `2·x + 1·x`, which like-term-free matching cannot
                // reconcile with the other side's folded form.
                if let Some(c) = const_eval(g, n) {
                    *coeff = coeff.wrapping_mul(c);
                    return Ok(true);
                }
                if distribute.is_none() {
                    *distribute = Some((n, map.clone(), trail.to_vec()));
                    return Ok(true);
                }
                factors.push(Factor {
                    pos: Pos::Node(n),
                    map: map.clone(),
                    trail: trail.to_vec(),
                });
                Ok(true)
            }
            Node::Const { value, .. } => {
                *coeff = coeff.wrapping_mul(value);
                Ok(true)
            }
            Node::Access {
                array,
                mapping,
                statement,
                ..
            } => {
                self.stats.compositions += 1;
                let m = {
                    let _span = arrayeq_trace::span("compose");
                    let t0 = arrayeq_trace::metrics_timer();
                    let m = map.compose(&mapping)?.simplified(true);
                    arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Composition, t0);
                    m
                };
                self.product_enter_array(
                    original_side,
                    array,
                    m,
                    with_stmt_owned(trail, &statement),
                    coeff,
                    factors,
                    distribute,
                )
            }
            _ => {
                factors.push(Factor {
                    pos: Pos::Node(n),
                    map: map.clone(),
                    trail: trail.to_vec(),
                });
                Ok(true)
            }
        }
    }

    /// An array position reached inside a product: inputs and recurrence
    /// arrays are opaque factors; an intermediate is looked through when
    /// exactly *one* of its definitions is live on the current domain
    /// (def-use correctness guarantees that definition covers every read
    /// there, so the restriction never narrows the factor's domain).  With
    /// several live definitions the factor stays opaque — its piecewise
    /// structure belongs to the recursive traversal, not the product
    /// decomposition.
    #[allow(clippy::too_many_arguments)]
    fn product_enter_array(
        &mut self,
        original_side: bool,
        array: String,
        map: Relation,
        trail: Vec<String>,
        coeff: &mut i64,
        factors: &mut Vec<Factor>,
        distribute: &mut Option<(NodeId, Relation, Vec<String>)>,
    ) -> Result<bool> {
        let g = if original_side { self.a } else { self.b };
        if !g.is_input(&array) && !g.recurrence_arrays().contains(&array) {
            let mut live: Option<(usize, Relation)> = None;
            for (i, def) in g.definitions(&array).iter().enumerate() {
                let sub = map.restrict_range(&def.elements)?.simplified(true);
                if sub.is_empty() {
                    continue;
                }
                match live {
                    None => live = Some((i, sub)),
                    Some(_) => {
                        live = None; // several live definitions: stay opaque
                        break;
                    }
                }
            }
            if let Some((i, sub)) = live {
                let def = g.definitions(&array)[i].clone();
                return self.flatten_product(
                    original_side,
                    def.root,
                    &sub,
                    &with_stmt_owned(&trail, &def.statement),
                    coeff,
                    factors,
                    distribute,
                );
            }
        }
        factors.push(Factor {
            pos: Pos::Array(array),
            map,
            trail,
        });
        Ok(true)
    }
}
