//! Algebraic normalization — the extended method's flattening and matching
//! operations (Fig. 4 and Section 5.2 of the paper), grown into a
//! first-class subsystem.
//!
//! # Paper mapping
//!
//! The paper normalises at operators declared associative and/or
//! commutative: an operator node's chain is **flattened** (Fig. 4) into a
//! set of operands-with-mappings, looking through intermediate variables,
//! and the two sides' flattened operand sets are **matched** (Section 5.2)
//! region by region — the output domain is split into pieces on which every
//! operand is either fully present or fully absent, and within each piece
//! operands pair up by proving their sub-computations equivalent with
//! identical output-current mappings.
//!
//! This module keeps that skeleton and widens the algebra:
//!
//! * **[`flatten`]** produces [`FlatTerm`]s: an integer *coefficient* times
//!   a product of *factors* (ADDG positions with accumulated mappings).
//!   Beyond the paper's operand collection it performs, per the declared
//!   [`OperatorProperties`]:
//!   - *inverse folding* — `a - b` and unary negation fold into the `+`
//!     chain as negated coefficients (`a + (-1)·b`), so subtraction
//!     shuffles normalise away;
//!   - *constant folding* — constant operands fold into one value per
//!     region (`2 + x + 3` ≡ `x + 5`, `2·x·3` ≡ `6·x`);
//!   - *identity elements* — `x + 0` and `x * 1` vanish (the fold reaches
//!     the declared identity);
//!   - *annihilators* — a `* 0` collapses the chain to the constant `0`;
//!   - one-level *distribution* of `*` over `+` — `a*(b+c)` flattens into
//!     the two terms `a·b` and `a·c`, matching expanded kernels.
//! * **[`TermArena`]** ([`arena`]) hash-conses flattened terms into integer
//!   [`TermId`]s keyed by content fingerprints and mapping structural
//!   hashes — rename-invariant exactly like the tabling keys — so term
//!   comparison, dedup across regions and the tabling of matched pairs are
//!   integer operations instead of re-walks of ADDG chains.
//! * **[`matching`]** splits the output domain into pieces (unchanged from
//!   the paper), folds and compares the constant part per piece, applies
//!   the annihilator short-circuit, and greedily matches the remaining
//!   terms — first by arena id (integer equality), then through the match
//!   memo, and only then by a speculative recursive equivalence check.
//!
//! The entry point is [`crate::checker::Checker::check_algebraic`], whose
//! body lives in [`matching`]; `checker.rs` itself only dispatches here.
//! The parallel coordinator ([`crate::parallel`]) reuses the same flatten
//! and piece-splitting code to decompose one flatten/match obligation into
//! independent per-piece sub-obligations.
//!
//! # Chain families
//!
//! The paper flattens chains of one operator.  Inverse folding and
//! distribution make membership wider: a `-` node belongs to the `+` chain,
//! a `*` node can appear as a single `+`-term.  [`chain_family`] resolves,
//! for a pair of operator kinds, which chain (if any) both sides normalise
//! into — preferring the tighter family (`*` for two `*` roots) and falling
//! back to `+` when only the additive reading is shared (a `*` root against
//! a `+` root, the factored/expanded scenario).
//!
//! [`OperatorProperties`]: crate::OperatorProperties

pub(crate) mod arena;
pub(crate) mod flatten;
pub(crate) mod matching;

pub(crate) use arena::TermArena;
pub(crate) use flatten::FlatTerm;

use crate::checker::Method;
use crate::operators::OperatorProperties;
use arrayeq_addg::OperatorKind;

/// A chain family without owning its name: `Call` borrows the operator's
/// name, so candidate resolution on the traversal's hot path allocates
/// nothing (the old `Vec<OperatorKind>` form cloned a `String` per `Call`
/// dispatch).  Converted to an owned [`OperatorKind`] only on a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fam<'k> {
    Add,
    Mul,
    Call(&'k str),
}

impl Fam<'_> {
    fn to_kind(self) -> OperatorKind {
        match self {
            Fam::Add => OperatorKind::Add,
            Fam::Mul => OperatorKind::Mul,
            Fam::Call(name) => OperatorKind::Call(name.to_owned()),
        }
    }

    fn class(self, ops: &OperatorProperties) -> crate::operators::OperatorClass {
        match self {
            Fam::Add => ops.class_of(&OperatorKind::Add),
            Fam::Mul => ops.class_of(&OperatorKind::Mul),
            // Only reached in tests/diagnostics paths; chain resolution
            // derives Call classes before building the candidate.
            Fam::Call(name) => ops.class_of(&OperatorKind::Call(name.to_owned())),
        }
    }
}

/// The chains an operator kind can normalise into, most specific first,
/// given the declared operator algebra (at most two).  Both slots `None`
/// when the kind only compares structurally.
pub(crate) fn family_candidates<'k>(
    kind: &'k OperatorKind,
    ops: &OperatorProperties,
) -> [Option<Fam<'k>>; 2] {
    let add = ops.class_of(&OperatorKind::Add);
    let mul = ops.class_of(&OperatorKind::Mul);
    match kind {
        OperatorKind::Add if add.is_algebraic() => [Some(Fam::Add), None],
        // Inverse folding rewrites the chain's term structure, so it needs
        // the full AC class on `+` (a merely associative `+` keeps the
        // paper's ordered chains, where `-` stays structural).
        OperatorKind::Sub if add.is_ac() => [Some(Fam::Add), None],
        // Negation is `(-1)·x`: additive by inverse folding, multiplicative
        // through the constant factor.
        OperatorKind::Neg => [
            add.is_ac().then_some(Fam::Add),
            mul.is_ac().then_some(Fam::Mul),
        ],
        // A `*` chain is itself, or — via one-level distribution — a single
        // term of a `+` chain.
        OperatorKind::Mul => [
            mul.is_algebraic().then_some(Fam::Mul),
            (add.is_ac() && mul.is_ac()).then_some(Fam::Add),
        ],
        OperatorKind::Call(name) if ops.class_of(kind).is_algebraic() => {
            [Some(Fam::Call(name)), None]
        }
        _ => [None, None],
    }
}

/// Resolves the chain family of a pair of operator nodes: the most specific
/// chain *both* kinds normalise into, or `None` when the pair must be
/// compared structurally (same kind) or mismatched (different kinds).
pub(crate) fn chain_family(
    ka: &OperatorKind,
    kb: &OperatorKind,
    ops: &OperatorProperties,
    method: Method,
) -> Option<OperatorKind> {
    if method != Method::Extended {
        return None;
    }
    let ca = family_candidates(ka, ops);
    let cb = family_candidates(kb, ops);
    if let Some(f) = ca
        .iter()
        .flatten()
        .find(|f| cb.iter().flatten().any(|g| g == *f))
    {
        return Some(f.to_kind());
    }
    // Fallback: when one root normalises into a constant-folding chain and
    // the other shares no family, the other side reads as the chain's
    // single opaque term — this is how `f(x) + 0` or `f(x) * 1` verifies
    // against plain `f(x)` for an uninterpreted `f`.  Sound either way:
    // the opaque term is matched by the ordinary recursive check.
    let foldable = |cands: [Option<Fam<'_>>; 2]| {
        cands
            .into_iter()
            .flatten()
            .find(|f| matches!(f, Fam::Add | Fam::Mul) && f.class(ops).is_ac())
            .map(Fam::to_kind)
    };
    foldable(ca).or_else(|| foldable(cb))
}

/// The chain family for an operator node compared against a *constant*
/// node: constants fold into `+` and `*` chains (and only those), so the
/// family is the operator's most specific foldable chain.
pub(crate) fn family_against_const(
    kind: &OperatorKind,
    ops: &OperatorProperties,
    method: Method,
) -> Option<OperatorKind> {
    if method != Method::Extended {
        return None;
    }
    family_candidates(kind, ops)
        .into_iter()
        .flatten()
        .find(|f| matches!(f, Fam::Add | Fam::Mul) && f.class(ops).is_ac())
        .map(Fam::to_kind)
}

/// The chain family for an operator node compared against a *leaf* array
/// position (input or recurrence array): the leaf reads as the single term
/// of any chain, so the operator's most specific family applies — this is
/// how `X + 0` or `X * 1` against plain `X` verifies.
pub(crate) fn family_against_leaf(
    kind: &OperatorKind,
    ops: &OperatorProperties,
    method: Method,
) -> Option<OperatorKind> {
    if method != Method::Extended {
        return None;
    }
    family_candidates(kind, ops)
        .into_iter()
        .flatten()
        .next()
        .map(Fam::to_kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::OperatorClass;

    #[test]
    fn family_resolution_prefers_the_tight_chain() {
        let ops = OperatorProperties::default();
        let m = Method::Extended;
        assert_eq!(
            chain_family(&OperatorKind::Mul, &OperatorKind::Mul, &ops, m),
            Some(OperatorKind::Mul)
        );
        assert_eq!(
            chain_family(&OperatorKind::Mul, &OperatorKind::Add, &ops, m),
            Some(OperatorKind::Add),
            "factored vs expanded reads multiplicative roots additively"
        );
        assert_eq!(
            chain_family(&OperatorKind::Sub, &OperatorKind::Add, &ops, m),
            Some(OperatorKind::Add)
        );
        assert_eq!(
            chain_family(&OperatorKind::Neg, &OperatorKind::Sub, &ops, m),
            Some(OperatorKind::Add)
        );
        assert_eq!(
            chain_family(&OperatorKind::Div, &OperatorKind::Div, &ops, m),
            None
        );
        assert_eq!(
            chain_family(&OperatorKind::Add, &OperatorKind::Add, &ops, Method::Basic),
            None,
            "the basic method never normalises"
        );
    }

    #[test]
    fn families_respect_the_declared_algebra() {
        // Without full AC on `+`, inverse folding is off: `-` is structural.
        let assoc_only = OperatorProperties::default().with_add(OperatorClass::ASSOCIATIVE);
        assert_eq!(
            chain_family(
                &OperatorKind::Sub,
                &OperatorKind::Add,
                &assoc_only,
                Method::Extended
            ),
            None
        );
        // `+` chains themselves still flatten under associativity alone.
        assert_eq!(
            chain_family(
                &OperatorKind::Add,
                &OperatorKind::Add,
                &assoc_only,
                Method::Extended
            ),
            Some(OperatorKind::Add)
        );
        let none = OperatorProperties::none();
        assert_eq!(family_candidates(&OperatorKind::Add, &none), [None, None]);
        assert_eq!(family_candidates(&OperatorKind::Mul, &none), [None, None]);

        let ops = OperatorProperties::default().declare_call("min", OperatorClass::AC);
        assert_eq!(
            chain_family(
                &OperatorKind::Call("min".into()),
                &OperatorKind::Call("min".into()),
                &ops,
                Method::Extended
            ),
            Some(OperatorKind::Call("min".into()))
        );
        assert_eq!(
            family_against_const(&OperatorKind::Call("min".into()), &ops, Method::Extended),
            None,
            "constants only fold into the built-in chains"
        );
        assert_eq!(
            family_against_const(&OperatorKind::Mul, &ops, Method::Extended),
            Some(OperatorKind::Mul)
        );
        assert_eq!(
            family_against_leaf(&OperatorKind::Mul, &ops, Method::Extended),
            Some(OperatorKind::Mul)
        );
    }
}
