//! Matching (Section 5.2): pairing the flattened terms of the two sides
//! region by region.
//!
//! The output domain is split into pieces on which every term is fully
//! present or fully absent (unchanged from the paper).  Per piece the
//! matcher then
//!
//! 1. folds the constant terms of each side (`+`: sum, `*`: product) and
//!    compares the folded values — this is where identity operands vanish
//!    (`x + 0` folds to the same constant part as plain `x`) and constant
//!    folding proves `2 + x + 3` ≡ `x + 5`;
//! 2. applies the declared annihilator — a chain whose constant part folds
//!    to the annihilator (`x * 0`) *is* that constant, so both sides
//!    annihilating matches regardless of their remaining factors;
//! 3. greedily pairs the non-constant terms: by arena id first (one integer
//!    comparison), then through the match memo, and only then by a
//!    speculative recursive equivalence check per factor pair.

use super::arena::TermId;
use super::flatten::FlatTerm;
use crate::checker::{Checker, Pos};
use crate::diagnostics::{Diagnostic, DiagnosticKind};
use crate::Result;
use arrayeq_addg::{describe_node, OperatorKind};
use arrayeq_omega::{Relation, Set};

/// Partitions `full` into pieces on which every term of either side is
/// fully present or fully absent.
pub(crate) fn split_pieces(
    full: &Set,
    terms_a: &[FlatTerm],
    terms_b: &[FlatTerm],
) -> Result<Vec<Set>> {
    let mut pieces = vec![full.clone()];
    for t in terms_a.iter().chain(terms_b.iter()) {
        let dom = &t.domain;
        let mut next = Vec::new();
        for p in pieces {
            let inside = p.intersect(dom)?.simplified();
            let outside = p.subtract(dom)?.simplified();
            if !inside.is_empty() {
                next.push(inside);
            }
            if !outside.is_empty() {
                next.push(outside);
            }
        }
        pieces = next;
    }
    Ok(pieces)
}

/// Restricts a term list to one piece: terms whose domain misses the piece
/// drop out, surviving terms get their factor mappings restricted.
pub(crate) fn restrict_terms(terms: &[FlatTerm], piece: &Set) -> Result<Vec<FlatTerm>> {
    let mut out = Vec::new();
    'terms: for t in terms {
        if t.factors.is_empty() {
            if t.domain.intersect(piece)?.is_empty() {
                continue;
            }
            out.push(FlatTerm {
                domain: piece.clone(),
                ..t.clone()
            });
            continue;
        }
        let mut factors = Vec::with_capacity(t.factors.len());
        for f in &t.factors {
            let map = f.map.restrict_domain(piece)?.simplified(true);
            if map.is_empty() {
                continue 'terms;
            }
            factors.push(super::flatten::Factor {
                pos: f.pos.clone(),
                map,
                trail: f.trail.clone(),
            });
        }
        out.push(FlatTerm {
            coeff: t.coeff,
            factors,
            domain: piece.clone(),
            trail: t.trail.clone(),
        });
    }
    Ok(out)
}

impl<'x> Checker<'x> {
    /// The extended method at an algebraic chain: flatten both sides into
    /// the resolved family, split the output domain into regions with a
    /// fixed term structure, and match terms within each region.  Entered
    /// from `check_nodes` (operator/operator and operator/constant pairs)
    /// and from the leaf-versus-operator traversal arms.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check_algebraic(
        &mut self,
        family: &OperatorKind,
        pos_a: Pos,
        map_a: Relation,
        pos_b: Pos,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        self.stats.flattenings += 1;
        let full = map_a.domain();
        let mut terms_a = Vec::new();
        let mut terms_b = Vec::new();
        {
            let _span = arrayeq_trace::span("flatten");
            let t0 = arrayeq_trace::metrics_timer();
            self.flatten_family(
                true,
                family,
                pos_a,
                map_a,
                trail_a.to_vec(),
                1,
                true,
                &mut terms_a,
            )?;
            self.flatten_family(
                false,
                family,
                pos_b,
                map_b,
                trail_b.to_vec(),
                1,
                true,
                &mut terms_b,
            )?;
            arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Flatten, t0);
        }
        self.stats.terms_flattened += (terms_a.len() + terms_b.len()) as u64;
        arrayeq_trace::event_with("flattened", || {
            vec![
                arrayeq_trace::u("terms_a", terms_a.len() as u64),
                arrayeq_trace::u("terms_b", terms_b.len() as u64),
            ]
        });

        let pieces = split_pieces(&full, &terms_a, &terms_b)?;
        let mut ok = true;
        for piece in &pieces {
            ok &= self.match_piece(family, &terms_a, &terms_b, piece, trail_a, trail_b)?;
            if !self.budget() {
                return Ok(false);
            }
        }
        Ok(ok)
    }

    /// Restricts both term lists to one piece and matches them there.
    pub(crate) fn match_piece(
        &mut self,
        family: &OperatorKind,
        terms_a: &[FlatTerm],
        terms_b: &[FlatTerm],
        piece: &Set,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        let live_a = restrict_terms(terms_a, piece)?;
        let live_b = restrict_terms(terms_b, piece)?;
        self.match_restricted(family, &live_a, &live_b, piece, trail_a, trail_b)
    }

    /// Matches two already-restricted term lists over one piece (see the
    /// module docs for the three stages).  Also the body of a decomposed
    /// per-piece task in a parallel run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn match_restricted(
        &mut self,
        family: &OperatorKind,
        live_a: &[FlatTerm],
        live_b: &[FlatTerm],
        piece: &Set,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        self.stats.matchings += 1;
        let _span = arrayeq_trace::span_with("match", || {
            vec![
                arrayeq_trace::u("terms_a", live_a.len() as u64),
                arrayeq_trace::u("terms_b", live_b.len() as u64),
            ]
        });
        let _metric = arrayeq_trace::metric_guard(arrayeq_trace::Metric::Match);
        let class = self.opts.operators.class_of(family);
        let multiplicative = matches!(family, OperatorKind::Mul);
        let fold = |terms: &[FlatTerm]| -> i64 {
            let mut acc: i64 = if multiplicative { 1 } else { 0 };
            for t in terms.iter().filter(|t| t.factors.is_empty()) {
                acc = if multiplicative {
                    acc.wrapping_mul(t.coeff)
                } else {
                    acc.wrapping_add(t.coeff)
                };
            }
            acc
        };
        let const_a = fold(live_a);
        let const_b = fold(live_b);
        let terms_a: Vec<&FlatTerm> = live_a.iter().filter(|t| !t.factors.is_empty()).collect();
        let terms_b: Vec<&FlatTerm> = live_b.iter().filter(|t| !t.factors.is_empty()).collect();

        let fail = |this: &mut Self, message: String| {
            this.diagnostics.push(Diagnostic {
                kind: DiagnosticKind::MatchingFailure,
                output_array: None,
                original_statements: trail_a.to_vec(),
                transformed_statements: trail_b.to_vec(),
                expressions: vec![format!("operator `{family}`")],
                original_mapping: None,
                transformed_mapping: None,
                message,
                failing_domain: Some(piece.clone()),
            });
        };

        // Annihilator: a chain whose constant part folds to the declared
        // absorbing element *is* that element, whatever else it multiplies.
        if let Some(z) = class.annihilator {
            let za = const_a == z;
            let zb = const_b == z;
            if za && zb {
                return Ok(true);
            }
            if za != zb {
                let side = if za { "original" } else { "transformed" };
                fail(
                    self,
                    format!(
                        "the `{family}` chain is annihilated (constant {z}) in the {side} \
                         program only, on part of the output domain"
                    ),
                );
                return Ok(false);
            }
        }

        if const_a != const_b {
            fail(
                self,
                format!(
                    "the folded constant part of the `{family}` chain differs: \
                     {const_a} in the original and {const_b} in the transformed \
                     program on part of the output domain"
                ),
            );
            return Ok(false);
        }

        if terms_a.len() != terms_b.len() {
            fail(
                self,
                format!(
                    "the `{family}` chain has {} operands in the original and {} in the \
                     transformed program on part of the output domain",
                    terms_a.len(),
                    terms_b.len()
                ),
            );
            return Ok(false);
        }

        // Hash-cons both sides' terms: id equality is the fast matching
        // path, and (id, id) pairs key the match memo.
        let ids_a: Vec<Option<TermId>> =
            terms_a.iter().map(|t| self.intern_term(true, t)).collect();
        let ids_b: Vec<Option<TermId>> =
            terms_b.iter().map(|t| self.intern_term(false, t)).collect();

        let factor_comm = self.opts.operators.class_of(&OperatorKind::Mul).commutative;
        let mut used = vec![false; terms_b.len()];
        let mut all_ok = true;
        for (i, ta) in terms_a.iter().enumerate() {
            let mut matched = false;
            let candidates: Vec<usize> = if class.commutative {
                (0..terms_b.len()).filter(|&j| !used[j]).collect()
            } else {
                // Associative-only: order is preserved, so the i-th unused
                // operand is the only candidate.
                (0..terms_b.len()).filter(|&j| !used[j]).take(1).collect()
            };
            for j in candidates {
                if self.terms_match(factor_comm, ta, ids_a[i], terms_b[j], ids_b[j])? {
                    used[j] = true;
                    matched = true;
                    break;
                }
            }
            if !matched {
                all_ok = false;
                let (name, mapping) = self.describe_term(true, ta);
                // The closest unmatched candidate on the other side, for
                // the diagnostic.
                let other = terms_b
                    .iter()
                    .zip(&used)
                    .find(|(_, &u)| !u)
                    .map(|(t, _)| self.describe_term(false, t));
                self.diagnostics.push(Diagnostic {
                    kind: DiagnosticKind::MappingMismatch,
                    output_array: None,
                    original_statements: ta.trail.clone(),
                    transformed_statements: other
                        .as_ref()
                        .map(|_| terms_b.iter().flat_map(|t| t.trail.clone()).collect())
                        .unwrap_or_default(),
                    expressions: {
                        let mut e = vec![name];
                        if let Some((n, _)) = &other {
                            e.push(n.clone());
                        }
                        e
                    },
                    original_mapping: Some(mapping),
                    transformed_mapping: other.map(|(_, m)| m),
                    message: format!(
                        "no operand of the transformed `{family}` chain matches this operand of the original"
                    ),
                    failing_domain: Some(piece.clone()),
                });
            }
        }
        Ok(all_ok)
    }

    /// Whether two flattened terms are equivalent (the matching criterion):
    /// equal coefficients and a factor-for-factor equivalence of their
    /// products.  Fast paths: identical arena ids, then the match memo;
    /// the fallback runs speculative sub-checks whose diagnostics are
    /// discarded when they fail.
    fn terms_match(
        &mut self,
        commutative_factors: bool,
        ta: &FlatTerm,
        ia: Option<TermId>,
        tb: &FlatTerm,
        ib: Option<TermId>,
    ) -> Result<bool> {
        if let (Some(a), Some(b)) = (ia, ib) {
            if a == b {
                self.stats.fast_term_matches += 1;
                arrayeq_trace::discharge("arena_fast_match");
                return Ok(true);
            }
            if let Some(cached) = self.arena.lookup_match(a, b) {
                self.stats.term_memo_hits += 1;
                arrayeq_trace::discharge("match_memo");
                return Ok(cached);
            }
        }
        if ta.coeff != tb.coeff || ta.factors.len() != tb.factors.len() {
            if let (Some(a), Some(b)) = (ia, ib) {
                self.arena.record_match(a, b, false);
            }
            return Ok(false);
        }
        let assumption_uses_before = self.assumption_uses;
        let saved = self.diagnostics.len();
        let mut used = vec![false; tb.factors.len()];
        let mut all = true;
        for fa in &ta.factors {
            let mut matched = false;
            let candidates: Vec<usize> = if commutative_factors {
                (0..tb.factors.len()).filter(|&j| !used[j]).collect()
            } else {
                (0..tb.factors.len())
                    .filter(|&j| !used[j])
                    .take(1)
                    .collect()
            };
            for j in candidates {
                let fb = &tb.factors[j];
                let mark = self.diagnostics.len();
                let ok = self.check(
                    fa.pos.clone(),
                    fa.map.clone(),
                    fb.pos.clone(),
                    fb.map.clone(),
                    &fa.trail,
                    &fb.trail,
                )?;
                if ok {
                    used[j] = true;
                    matched = true;
                    break;
                }
                self.diagnostics.truncate(mark);
            }
            if !matched {
                all = false;
                break;
            }
        }
        if !all {
            self.diagnostics.truncate(saved);
        }
        // A result derived under a coinductive recurrence assumption is
        // only valid inside that assumption's scope; a result produced
        // while a budget was winding the traversal down proves nothing.
        // Everything else memoises.
        if !self.exhausted && self.assumption_uses == assumption_uses_before {
            if let (Some(a), Some(b)) = (ia, ib) {
                self.arena.record_match(a, b, all);
            }
        }
        Ok(all)
    }

    /// Interns one term into the arena by its rename-invariant content key;
    /// `None` when the run has no fingerprints (legacy keying baselines).
    fn intern_term(&mut self, original_side: bool, t: &FlatTerm) -> Option<TermId> {
        let keys: Vec<(u64, u64)> = {
            let (fa, fb) = self.fps.as_ref()?;
            let fps = if original_side { fa } else { fb };
            t.factors
                .iter()
                .map(|f| {
                    let p = match &f.pos {
                        Pos::Node(n) => fps.node(*n),
                        Pos::Array(v) => fps.array(v),
                    };
                    (p, f.map.structural_hash())
                })
                .collect()
        };
        Some(self.arena.intern(t, keys, &mut self.stats))
    }

    /// Renders a term for diagnostics: `(name, mapping)` in the style the
    /// single-operand matcher always used, with multi-factor products
    /// joined by `*` and a leading coefficient when it is not `1`.
    fn describe_term(&self, original_side: bool, t: &FlatTerm) -> (String, String) {
        let g = if original_side { self.a } else { self.b };
        let names: Vec<String> = t
            .factors
            .iter()
            .map(|f| match &f.pos {
                Pos::Array(v) => v.clone(),
                Pos::Node(n) => describe_node(g, *n),
            })
            .collect();
        let mut name = names.join(" * ");
        if t.coeff != 1 {
            name = format!("{} * {name}", t.coeff);
        }
        let mapping = t
            .factors
            .iter()
            .map(|f| f.map.to_string())
            .collect::<Vec<_>>()
            .join(" ; ");
        (name, mapping)
    }
}
