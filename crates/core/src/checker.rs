//! The synchronized ADDG traversal (Section 5 of the paper).

use crate::context::{BudgetExhausted, CheckContext, SharedTableKey, TableProvenance};
use crate::diagnostics::{Diagnostic, DiagnosticKind};
use crate::normalize::{self, TermArena};
use crate::operators::OperatorProperties;
use crate::report::{CheckStats, Report, Verdict};
use crate::{CoreError, Result};
use arrayeq_addg::{describe_node, extract, fingerprints, Addg, Fingerprints, Node, NodeId};
use arrayeq_lang::ast::Program;
use arrayeq_lang::classcheck::assert_in_class;
use arrayeq_lang::defuse::assert_def_use_correct;
use arrayeq_lang::parser::parse_program;
use arrayeq_omega::{Relation, Set};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Which variant of the method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Section 5.1: handles expression propagation and loop transformations
    /// only; operands are paired strictly by position.
    Basic,
    /// Section 5.2 (default): additionally normalises associative /
    /// commutative operators with the flattening and matching operations, so
    /// global algebraic transformations are handled in the same pass.
    #[default]
    Extended,
}

/// Focused checking (Section 6.1): restrict the check to parts of the
/// programs, which both speeds it up and sharpens diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Focus {
    /// Check only these output arrays (all common outputs when empty).
    pub outputs: Vec<String>,
    /// Declared correspondences between intermediate arrays of the original
    /// and the transformed program: when the traversal reaches such a pair
    /// with identical output-current mappings it stops early, treating the
    /// pair like a matching leaf.
    pub intermediate_pairs: Vec<(String, String)>,
}

/// Options controlling a verification run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Basic or extended method.
    pub method: Method,
    /// Operator property declarations.
    pub operators: OperatorProperties,
    /// Whether to table (memoise) established sub-equivalences.
    pub tabling: bool,
    /// Use the legacy string-rendered canonical keys for the tabling cache
    /// instead of the structural hashes.  Strictly slower — every lookup
    /// re-renders both relations — and kept only so the perf experiments can
    /// measure the two keying schemes against each other in the same run.
    pub string_table_keys: bool,
    /// Key the tabling cache by per-graph *position ids* (node id / dense
    /// array id) instead of the default rename-invariant content
    /// fingerprints.  Position keys never unify structurally identical
    /// sub-computations that live at different statements, so they hit less
    /// within one run; kept as the measured baseline for the intra-run
    /// hit-rate experiments (`--exp pr4`).
    pub position_table_keys: bool,
    /// Optional focused checking.
    pub focus: Option<Focus>,
    /// Output arrays the caller has *proven* unchanged against a baseline
    /// run (their root obligations are present in the
    /// [`crate::BaselineProofs`] of the context): the traversal skips them
    /// entirely — no domain check, no root obligation — while keeping them
    /// in [`Report::outputs_checked`], so the rendered report is
    /// byte-identical to a from-scratch run in which they silently
    /// succeeded.  This is the dirty-cone focus of incremental
    /// re-verification; unlike [`Focus::outputs`] it narrows *work*, not
    /// the set of outputs the verdict speaks about.  Soundness is the
    /// caller's obligation: list an output only when a baseline proves its
    /// root obligation under these same options.
    pub assume_clean: Vec<String>,
    /// Whether to run the def-use checker before extracting ADDGs (Fig. 6).
    pub check_def_use: bool,
    /// Whether to verify the program-class properties before checking.
    pub check_class: bool,
    /// Upper bound on traversal work (node-pair visits); exceeding it yields
    /// an inconclusive verdict instead of running forever.
    pub max_work: u64,
    /// Symbolic-parameter context applied to both programs before checking:
    /// each `(name, min)` entry *promotes* the named constant to a
    /// `#param name >= min` — an existing `#define` of that name is removed,
    /// an existing `#param` gets the new bound — so loop bounds over it stay
    /// symbolic and one verification covers every admissible value.
    /// Verdict-relevant (it changes what is being proven), hence part of the
    /// engine's options fingerprint.  Empty means "check the programs as
    /// written".
    pub params: Vec<(String, i64)>,
    /// Worker threads for *one* verification run: the root obligation is
    /// split into per-output and per-definition correspondence sub-proofs
    /// executed by a scoped worker pool.  `1` (the default) keeps the
    /// strictly sequential traversal; `0` means "use all available
    /// parallelism".  Verdicts and diagnostics are identical at every
    /// setting ([`crate::Report::render_stable`] is byte-stable); cache/work
    /// counters in [`CheckStats`] are scheduling-dependent at `jobs > 1`.
    pub jobs: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            method: Method::Extended,
            operators: OperatorProperties::default(),
            tabling: true,
            string_table_keys: false,
            position_table_keys: false,
            focus: None,
            assume_clean: Vec::new(),
            check_def_use: true,
            check_class: true,
            max_work: 2_000_000,
            params: Vec::new(),
            jobs: 1,
        }
    }
}

impl CheckOptions {
    /// Options for the basic method of Section 5.1.
    pub fn basic() -> Self {
        CheckOptions {
            method: Method::Basic,
            ..Default::default()
        }
    }

    /// Disables tabling (for the ablation experiment E9).
    pub fn without_tabling(mut self) -> Self {
        self.tabling = false;
        self
    }

    /// Switches the tabling cache to the legacy string keys (baseline for
    /// the keying-scheme perf comparison).
    pub fn with_string_table_keys(mut self) -> Self {
        self.string_table_keys = true;
        self
    }

    /// Switches the tabling cache to per-graph position-id keys (baseline
    /// for the rename-invariant-keying hit-rate comparison).
    pub fn with_position_table_keys(mut self) -> Self {
        self.position_table_keys = true;
        self
    }

    /// Sets the worker count for one verification run (see
    /// [`CheckOptions::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Declares symbolic parameters to promote in both programs (see
    /// [`CheckOptions::params`]).
    pub fn with_params(mut self, params: Vec<(String, i64)>) -> Self {
        self.params = params;
        self
    }

    /// Sets a focus.
    pub fn with_focus(mut self, focus: Focus) -> Self {
        self.focus = Some(focus);
        self
    }

    /// Declares outputs proven clean against a baseline (see
    /// [`CheckOptions::assume_clean`]).
    pub fn with_assume_clean(mut self, outputs: Vec<String>) -> Self {
        self.assume_clean = outputs;
        self
    }

    /// The effective worker count: `jobs`, with `0` resolved to the
    /// machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Whether the default rename-invariant fingerprint keys are active.
    pub(crate) fn fingerprint_table_keys(&self) -> bool {
        !self.string_table_keys && !self.position_table_keys
    }
}

/// Verifies two functions given as source text, running the full Fig. 6 flow:
/// parse → class check → def-use check → ADDG extraction → equivalence check.
///
/// This is the *one-shot convenience path*: every call runs with fresh
/// caches and only the [`CheckOptions::max_work`] budget.  Long-running
/// services that issue many queries should construct a persistent
/// `arrayeq::engine::Verifier` instead, which threads a [`CheckContext`]
/// (deadline, cancellation, cross-query shared tabling) through
/// [`verify_addgs_with`].
///
/// # Errors
///
/// Returns an error when either program fails to parse, violates the program
/// class, fails the def-use check, or when the functions' interfaces are not
/// comparable.  Inequivalence is *not* an error: it is reported in the
/// returned [`Report`].
pub fn verify_source(original: &str, transformed: &str, opts: &CheckOptions) -> Result<Report> {
    let p1 = parse_program(original)?;
    let p2 = parse_program(transformed)?;
    verify_programs(&p1, &p2, opts)
}

/// Verifies two parsed programs (see [`verify_source`]; one-shot convenience
/// path).
///
/// # Errors
///
/// Same as [`verify_source`], minus parsing.
pub fn verify_programs(
    original: &Program,
    transformed: &Program,
    opts: &CheckOptions,
) -> Result<Report> {
    verify_programs_with(original, transformed, opts, &CheckContext::default())
}

/// Verifies two parsed programs under an explicit [`CheckContext`]
/// (deadline, cancellation, cross-query shared tabling).
///
/// # Errors
///
/// Same as [`verify_programs`].
pub fn verify_programs_with(
    original: &Program,
    transformed: &Program,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
) -> Result<Report> {
    // Promote the declared parameter context into both programs first, so
    // class/def-use checks and ADDG extraction all see the symbolic sizes.
    let promoted = (!opts.params.is_empty()).then(|| {
        (
            promote_params(original, &opts.params),
            promote_params(transformed, &opts.params),
        )
    });
    let (original, transformed) = match &promoted {
        Some((a, b)) => (a, b),
        None => (original, transformed),
    };
    if opts.check_class {
        assert_in_class(original)?;
        assert_in_class(transformed)?;
    }
    if opts.check_def_use {
        assert_def_use_correct(original)?;
        assert_def_use_correct(transformed)?;
    }
    let g1 = extract(original)?;
    let g2 = extract(transformed)?;
    verify_addgs_with(&g1, &g2, opts, ctx)
}

/// Applies a [`CheckOptions::params`] context to one program: each named
/// constant becomes a symbolic `#param name >= min`.
fn promote_params(p: &Program, params: &[(String, i64)]) -> Program {
    let mut out = p.clone();
    for (name, min) in params {
        out.defines.remove(name);
        match out.symbolic_params.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = *min,
            None => out.symbolic_params.push((name.clone(), *min)),
        }
    }
    out
}

/// Verifies two already-extracted ADDGs (one-shot convenience path; see
/// [`verify_addgs_with`] for the engine entry point).
///
/// # Errors
///
/// Returns [`CoreError::Incomparable`] when the two graphs do not expose the
/// same output arrays (or the focused outputs are missing).
pub fn verify_addgs(original: &Addg, transformed: &Addg, opts: &CheckOptions) -> Result<Report> {
    verify_addgs_with(original, transformed, opts, &CheckContext::default())
}

/// Verifies two already-extracted ADDGs under an explicit [`CheckContext`].
///
/// This is the entry point the persistent engine uses: the context's
/// deadline and [`crate::CancelToken`] bound the traversal (an exceeded
/// budget surfaces as [`Verdict::Inconclusive`] with a typed
/// [`BudgetExhausted`] reason in [`Report::budget_exhausted`] — never a
/// hang), and its [`crate::SharedEquivalenceTable`] lets this run consume
/// and publish sub-proofs shared with other queries and threads.  When a
/// shared table is present, both graphs are content-fingerprinted
/// ([`arrayeq_addg::fingerprints`]) so tabling keys mean the same thing in
/// every query.
///
/// # Errors
///
/// Same as [`verify_addgs`].
pub fn verify_addgs_with(
    original: &Addg,
    transformed: &Addg,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
) -> Result<Report> {
    // Fingerprints key the default (rename-invariant) local tabling cache
    // and every shared-table entry, so they are computed whenever tabling is
    // on and either of those consumers is active.  Intermediate array names
    // are folded in only when the options make them verdict-relevant
    // (focused checking with declared intermediate correspondences);
    // otherwise repeated idioms behind renamed temporaries share entries.
    let fp = if opts
        .focus
        .as_ref()
        .is_some_and(|f| !f.intermediate_pairs.is_empty())
    {
        arrayeq_addg::fingerprints_named
    } else {
        fingerprints
    };
    let fps = (opts.tabling
        && (opts.fingerprint_table_keys() || ctx.shared_table.is_some() || ctx.baseline.is_some()))
    .then(|| (fp(original), fp(transformed)));
    verify_addgs_with_fps(original, transformed, opts, ctx, fps)
}

/// [`verify_addgs_with`] with the content fingerprints supplied by the
/// caller instead of recomputed.  The incremental path computes both graphs'
/// fingerprints anyway to classify outputs clean/dirty against a baseline;
/// the WL refinement over every node is a few milliseconds on wide kernels —
/// a significant share of a dirty-cone run whose whole point is to be an
/// order of magnitude under the from-scratch wall time — so it hands the
/// same fingerprints straight to the traversal rather than paying twice.
///
/// `fps` must have been computed by the same fingerprint function the
/// options select (`fingerprints_named` under a focus with intermediate
/// pairs, `fingerprints` otherwise); pass `None` to run untabled.
///
/// # Errors
///
/// Same as [`verify_addgs`].
pub fn verify_addgs_with_fps(
    original: &Addg,
    transformed: &Addg,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
    fps: Option<(Fingerprints, Fingerprints)>,
) -> Result<Report> {
    if opts.effective_jobs() > 1 {
        return crate::parallel::verify_addgs_parallel(original, transformed, opts, ctx, fps);
    }
    let mut checker = Checker::new(original, transformed, opts, ctx, fps, None);
    checker.run()
}

/// Key of the tabling cache: the two traversal positions plus the two
/// output-current mappings.
///
/// The default `Fp` form is *rename-invariant*: positions are identified by
/// their content fingerprints ([`arrayeq_addg::fingerprints`]) and mappings
/// by their rename-canonical [`Relation::structural_hash`], so structurally
/// identical sub-proofs — same computation at a different statement, same
/// mapping written over differently-ordered iterators — share one entry.
/// `Positional` identifies positions by per-graph ids instead (node id /
/// dense array id; [`CheckOptions::position_table_keys`]), the pre-PR4
/// baseline for the intra-run hit-rate comparison.  `Text` is the legacy
/// string scheme ([`CheckOptions::string_table_keys`]), rebuilt on every
/// lookup, kept as the measured keying-cost baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TableKey {
    Fp(u64, u64, u64, u64),
    Positional(usize, usize, u64, u64),
    Text(usize, usize, String, String),
}

/// The traversal state.
///
/// One `Checker` is either the whole sequential run (`jobs = 1`) or one
/// *worker* of a parallel run, in which case it executes a stream of
/// [`crate::parallel`] tasks against its own local state (table, coinductive
/// assumptions, stats, diagnostics buffer) while budgets are accounted
/// through the run-wide [`SharedBudget`].
pub(crate) struct Checker<'x> {
    pub(crate) a: &'x Addg,
    pub(crate) b: &'x Addg,
    pub(crate) opts: &'x CheckOptions,
    /// Budgets and cross-query sharing (default context on the one-shot path).
    ctx: &'x CheckContext<'x>,
    /// Content fingerprints of both graphs; they key the default local
    /// tabling cache, the cross-query shared entries and the term arena's
    /// interning keys.
    pub(crate) fps: Option<(Fingerprints, Fingerprints)>,
    pub(crate) stats: CheckStats,
    pub(crate) diagnostics: Vec<Diagnostic>,
    /// Hash-consed flattened terms plus the matched-pair memo (the
    /// normalization subsystem's state; see [`crate::normalize`]).
    pub(crate) arena: TermArena,
    /// Tabling cache: established equivalences of sub-ADDG pairs.
    table: HashMap<TableKey, bool>,
    /// Dense integer ids for array positions of each graph, so array/array
    /// and mixed pairs can be tabled without string keys (node positions use
    /// their `NodeId` directly; see [`Checker::pos_id`]).
    array_ids_a: HashMap<String, usize>,
    array_ids_b: HashMap<String, usize>,
    /// Hash-collision paranoia (debug builds only): the canonical renderings
    /// of the relations behind every `Hashed` table entry.  A lookup whose
    /// hashes match but whose canonical keys differ is a real 64-bit
    /// collision and is counted in [`CheckStats::hash_collisions`].
    #[cfg(debug_assertions)]
    table_shadow: HashMap<TableKey, (String, String)>,
    /// Coinduction for recurrences: array pairs currently being proven, with
    /// the element-pair relation assumed equal.
    in_progress: BTreeMap<(String, String), Relation>,
    /// Bumped every time a sub-check is discharged by an `in_progress`
    /// coinductive assumption.  A sub-proof during which this counter moved
    /// is only valid under that assumption and must not be tabled; everything
    /// else (the overwhelming majority) caches freely.
    pub(crate) assumption_uses: u64,
    work: u64,
    pub(crate) exhausted: bool,
    /// Which budget fired when `exhausted` was set.
    budget_reason: Option<BudgetExhausted>,
    /// Start of the traversal, for deadline bookkeeping.
    started: Instant,
    /// Run-wide budget shared by every worker of a parallel run (`None` in
    /// the sequential path).  Workers batch their local visit counts into
    /// `work` and flush them here every 64 visits, at which point they also
    /// observe cancellations and limit trips from other workers.
    shared_budget: Option<&'x SharedBudget>,
    /// Visits already flushed to the shared budget.
    flushed_work: u64,
}

/// The budget of one parallel run, shared by all its workers.
///
/// Work accounting is approximate by design: each worker flushes its local
/// visit count every 64 visits, so the run can overshoot `max_work` by at
/// most `64 × workers` visits before every worker has wound down — the same
/// promptness/overhead trade the sequential poll cadence makes for
/// deadline checks.
#[derive(Debug, Default)]
pub(crate) struct SharedBudget {
    work: std::sync::atomic::AtomicU64,
    exhausted: std::sync::atomic::AtomicBool,
    reason: std::sync::Mutex<Option<BudgetExhausted>>,
    /// Solver overflow events observed by any thread of the run.  Overflow
    /// does not wind the pool down (unlike a budget trip, the remaining
    /// obligations still produce their diagnostics); it only withholds the
    /// final verdict as inconclusive.
    overflow_events: std::sync::atomic::AtomicU64,
}

impl SharedBudget {
    /// Marks the run exhausted; the first caller's reason wins (matching
    /// the sequential checker, where only one budget can fire).  The lock is
    /// recovered from poisoning so a panicked worker cannot wedge budget
    /// reporting for the surviving workers.
    fn trip(&self, reason: BudgetExhausted) {
        use std::sync::atomic::Ordering;
        let mut slot = self
            .reason
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(reason);
        }
        self.exhausted.store(true, Ordering::Relaxed);
    }

    /// Whether any worker tripped a budget.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.exhausted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The reason of the first trip, if any.
    pub(crate) fn take_reason(&self) -> Option<BudgetExhausted> {
        self.reason
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    /// Folds one thread's solver overflow events into the run-wide count.
    pub(crate) fn note_overflow_events(&self, events: u64) {
        self.overflow_events
            .fetch_add(events, std::sync::atomic::Ordering::Relaxed);
    }

    /// Solver overflow events observed across every thread of the run.
    pub(crate) fn overflow_events(&self) -> u64 {
        self.overflow_events
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A position in one ADDG during the synchronized traversal.
#[derive(Debug, Clone)]
pub(crate) enum Pos {
    /// The elements of an array variable (map range = array elements).
    Array(String),
    /// A node inside a statement's operator tree (map range = the elements
    /// defined by that statement).
    Node(NodeId),
}

impl<'x> Checker<'x> {
    /// A fresh traversal state (the sequential run, or one worker of a
    /// parallel run when `shared_budget` is present).
    pub(crate) fn new(
        a: &'x Addg,
        b: &'x Addg,
        opts: &'x CheckOptions,
        ctx: &'x CheckContext<'x>,
        fps: Option<(Fingerprints, Fingerprints)>,
        shared_budget: Option<&'x SharedBudget>,
    ) -> Self {
        Checker {
            a,
            b,
            opts,
            ctx,
            fps,
            stats: CheckStats::default(),
            diagnostics: Vec::new(),
            arena: TermArena::default(),
            table: HashMap::new(),
            array_ids_a: HashMap::new(),
            array_ids_b: HashMap::new(),
            #[cfg(debug_assertions)]
            table_shadow: HashMap::new(),
            in_progress: BTreeMap::new(),
            assumption_uses: 0,
            work: 0,
            exhausted: false,
            budget_reason: None,
            started: Instant::now(),
            shared_budget,
            flushed_work: 0,
        }
    }

    /// Runs one decomposed sub-obligation as a parallel worker: the
    /// coinductive assumptions accumulated along the task's decomposition
    /// path are installed worker-locally (so the no-tabling-under-assumption
    /// guard keeps working unchanged), the traversal runs, and the
    /// diagnostics the task produced are drained out for deterministic
    /// merging by the coordinator.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_task(
        &mut self,
        pos_a: Pos,
        map_a: Relation,
        pos_b: Pos,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
        assumptions: &[((String, String), Relation)],
    ) -> Result<(bool, Vec<Diagnostic>)> {
        self.in_progress.clear();
        for (key, pairs) in assumptions {
            self.in_progress.insert(key.clone(), pairs.clone());
        }
        let ok = self.check(pos_a, map_a, pos_b, map_b, trail_a, trail_b)?;
        Ok((ok, std::mem::take(&mut self.diagnostics)))
    }

    /// Runs one decomposed per-piece algebraic match as a parallel worker:
    /// the coordinator already flattened both sides and restricted the term
    /// lists to the piece ([`crate::parallel`]); this installs the task's
    /// coinductive assumptions and runs the matcher, which is byte-for-byte
    /// the loop body the sequential `check_algebraic` executes per piece.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_match_task(
        &mut self,
        family: &arrayeq_addg::OperatorKind,
        live_a: &[crate::normalize::FlatTerm],
        live_b: &[crate::normalize::FlatTerm],
        piece: &Set,
        trail_a: &[String],
        trail_b: &[String],
        assumptions: &[((String, String), Relation)],
    ) -> Result<(bool, Vec<Diagnostic>)> {
        self.in_progress.clear();
        for (key, pairs) in assumptions {
            self.in_progress.insert(key.clone(), pairs.clone());
        }
        let ok = self.match_restricted(family, live_a, live_b, piece, trail_a, trail_b)?;
        Ok((ok, std::mem::take(&mut self.diagnostics)))
    }

    /// The worker's accumulated counters (merged by the coordinator).
    pub(crate) fn into_stats(self) -> CheckStats {
        self.stats
    }
}

/// The outputs one run must check: the focused subset when a focus names
/// outputs, otherwise all common outputs (with extra outputs on the
/// transformed side rejected as incomparable).
pub(crate) fn select_outputs(a: &Addg, b: &Addg, opts: &CheckOptions) -> Result<Vec<String>> {
    let wanted: Vec<String> = match opts.focus.as_ref().filter(|f| !f.outputs.is_empty()) {
        Some(f) => f.outputs.clone(),
        None => a.output_arrays().to_vec(),
    };
    let mut outputs = Vec::new();
    for o in wanted {
        if !a.is_output(&o) {
            return Err(CoreError::Incomparable {
                message: format!("`{o}` is not an output of the original program"),
            });
        }
        if !b.is_output(&o) {
            return Err(CoreError::Incomparable {
                message: format!(
                    "output `{o}` of the original program is not an output of the transformed one"
                ),
            });
        }
        outputs.push(o);
    }
    // Unless focused, the transformed program must not have extra outputs.
    if opts.focus.is_none() {
        for o in b.output_arrays() {
            if !outputs.contains(o) {
                return Err(CoreError::Incomparable {
                    message: format!("transformed program has an extra output `{o}`"),
                });
            }
        }
    }
    Ok(outputs)
}

/// Result of the per-output defined-elements comparison that precedes the
/// traversal of one output.
pub(crate) enum OutputDomains {
    /// Both programs define the same elements; the traversal starts from the
    /// identity relation on this set.
    Match(Set),
    /// The defined-element sets differ; the diagnostic carries their
    /// symmetric difference as the failing domain.
    Mismatch(Box<Diagnostic>),
}

/// Compares the defined-element sets of `output` in both graphs (the first
/// half of the per-output obligation).
pub(crate) fn check_output_domains(a: &Addg, b: &Addg, output: &str) -> Result<OutputDomains> {
    let ea = a
        .defined_elements(output)
        .ok_or_else(|| CoreError::Incomparable {
            message: format!("original program never defines output `{output}`"),
        })?;
    let eb = b
        .defined_elements(output)
        .ok_or_else(|| CoreError::Incomparable {
            message: format!("transformed program never defines output `{output}`"),
        })?;
    if ea.is_equal(&eb)? {
        return Ok(OutputDomains::Match(ea));
    }
    // The failing elements are exactly the symmetric difference of the two
    // defined-element sets.
    // `minimized` additionally gists each surviving conjunct against its
    // siblings' canonical forms, so the rendered failing domain is minimal.
    let failing = ea.subtract(&eb)?.union(&eb.subtract(&ea)?)?.minimized();
    Ok(OutputDomains::Mismatch(Box::new(Diagnostic {
        kind: DiagnosticKind::OutputDomainMismatch,
        output_array: None, // stamped by the caller
        original_statements: a
            .definitions(output)
            .iter()
            .map(|d| d.statement.clone())
            .collect(),
        transformed_statements: b
            .definitions(output)
            .iter()
            .map(|d| d.statement.clone())
            .collect(),
        expressions: vec![output.to_owned()],
        original_mapping: Some(ea.to_string()),
        transformed_mapping: Some(eb.to_string()),
        message: format!("the two programs do not define the same elements of `{output}`"),
        failing_domain: Some(failing),
    })))
}

/// Classifies a pipeline error that means the solver *cannot answer*: the
/// obligation needed an Omega operation outside the exactly decidable
/// fragment (inexact existential elimination, out-of-fragment closure).
/// Such an error is a property of the input's constraint systems — huge
/// coefficients the big-int fallback let through the front end — not a
/// malformed query, so callers downgrade the affected output to a typed
/// inconclusive instead of failing the whole pipeline.
pub(crate) fn unsupported_fragment(e: &CoreError) -> Option<BudgetExhausted> {
    match e {
        CoreError::Omega(arrayeq_omega::OmegaError::InexactElimination { op }) => {
            Some(BudgetExhausted::UnsupportedFragment { op })
        }
        CoreError::Omega(arrayeq_omega::OmegaError::UnsupportedClosure { .. }) => {
            Some(BudgetExhausted::UnsupportedFragment {
                op: "transitive closure",
            })
        }
        _ => None,
    }
}

/// Per-output content fingerprints for the report: `(name, original-side,
/// transformed-side)` in output order; empty when the run computed no
/// fingerprints.  Shared by the sequential and the parallel path so the
/// member is identical at every jobs setting.
pub(crate) fn output_fingerprints(
    outputs: &[String],
    fps: Option<&(Fingerprints, Fingerprints)>,
) -> Vec<(String, u64, u64)> {
    match fps {
        Some((fa, fb)) => outputs
            .iter()
            .map(|o| (o.clone(), fa.array(o), fb.array(o)))
            .collect(),
        None => Vec::new(),
    }
}

/// The tabling key of one output's *root obligation*: the whole-output
/// equivalence query `(Array(out), identity, Array(out), identity)` that
/// [`verify_addgs_with`] poses per output.  Presence of this key in a
/// [`crate::BaselineProofs`] store proves the entire output equivalent
/// under the options the baseline was produced with — the basis on which
/// incremental re-verification classifies an output as clean and skips it
/// via [`CheckOptions::assume_clean`].
///
/// Returns `None` when the output's element domains mismatch between the
/// graphs (such an output can never have a proven root entry) or the
/// element-set computation fails.
pub fn output_root_key(
    original: &Addg,
    transformed: &Addg,
    fps: (&Fingerprints, &Fingerprints),
    output: &str,
) -> Option<SharedTableKey> {
    let ea = match check_output_domains(original, transformed, output) {
        Ok(OutputDomains::Match(ea)) => ea,
        _ => return None,
    };
    let h = Relation::identity_on(&ea).structural_hash();
    Some((fps.0.array(output), fps.1.array(output), h, h))
}

impl Checker<'_> {
    fn run(&mut self) -> Result<Report> {
        // Solver overflow is reported out-of-band through a sticky
        // thread-local flag; clear any residue from an earlier run on this
        // thread so the poll below attributes events to this run only.
        let _ = arrayeq_omega::take_arith_overflow();
        let overflow_base = arrayeq_omega::arith_overflow_events();
        // The DNF engine's counters are thread-local and monotonic, like the
        // overflow event counter: snapshot here, delta at the end.
        let subsumed_base = arrayeq_omega::conjuncts_subsumed_events();
        let fallback_base = arrayeq_omega::bigint_fallback_events();
        crate::parallel::consume_injected_overflow();
        let outputs = select_outputs(self.a, self.b, self.opts)?;
        let mut all_ok = true;
        let mut cone = 0u64;
        let mut domain_hashes: Vec<(String, u64)> = Vec::new();
        for output in &outputs {
            // Dirty-cone focus: outputs the caller proved clean against a
            // baseline are skipped outright.  They stay in
            // `outputs_checked` and produce no diagnostics — exactly what a
            // from-scratch run in which they succeed silently looks like.
            if self.opts.assume_clean.iter().any(|o| o == output) {
                arrayeq_trace::event_with("output_clean", || {
                    vec![arrayeq_trace::s("output", output.clone())]
                });
                continue;
            }
            cone += 1;
            let span = arrayeq_trace::span_with("output", || {
                vec![arrayeq_trace::s("output", output.clone())]
            });
            let diag_start = self.diagnostics.len();
            let domains = match check_output_domains(self.a, self.b, output) {
                Ok(d) => d,
                Err(e) => {
                    if let Some(reason) = unsupported_fragment(&e) {
                        self.note_unsupported(reason, output);
                        continue;
                    }
                    return Err(e);
                }
            };
            let ea = match domains {
                OutputDomains::Match(ea) => ea,
                OutputDomains::Mismatch(diag) => {
                    self.diagnostics.push(*diag);
                    self.stamp_output(diag_start, output);
                    all_ok = false;
                    arrayeq_trace::event_with("output_verdict", || {
                        vec![
                            arrayeq_trace::s("output", output.clone()),
                            arrayeq_trace::b("ok", false),
                        ]
                    });
                    continue;
                }
            };
            let id = Relation::identity_on(&ea);
            domain_hashes.push((output.clone(), id.structural_hash()));
            let ok = match self.check(
                Pos::Array(output.clone()),
                id.clone(),
                Pos::Array(output.clone()),
                id,
                &[],
                &[],
            ) {
                Ok(ok) => ok,
                Err(e) => {
                    if let Some(reason) = unsupported_fragment(&e) {
                        self.stamp_output(diag_start, output);
                        self.note_unsupported(reason, output);
                        continue;
                    }
                    return Err(e);
                }
            };
            self.stamp_output(diag_start, output);
            all_ok &= ok;
            arrayeq_trace::event_with("output_verdict", || {
                vec![
                    arrayeq_trace::s("output", output.clone()),
                    arrayeq_trace::b("ok", ok),
                ]
            });
            drop(span);
        }
        // Any solver overflow degraded some feasibility answer to its
        // conservative direction mid-run; the verdict would then rest on a
        // weakened constraint system, so it is withheld as inconclusive
        // rather than risked — never silently wrapped, never panicked.
        if arrayeq_omega::take_arith_overflow() {
            self.exhausted = true;
            if self.budget_reason.is_none() {
                self.budget_reason = Some(BudgetExhausted::ArithOverflow {
                    events: arrayeq_omega::arith_overflow_events() - overflow_base,
                });
            }
        }
        let verdict = if self.exhausted {
            Verdict::Inconclusive
        } else if all_ok {
            Verdict::Equivalent
        } else {
            Verdict::NotEquivalent
        };
        if !self.opts.assume_clean.is_empty() {
            self.stats.cone_positions = cone;
        }
        self.stats.conjuncts_subsumed += arrayeq_omega::conjuncts_subsumed_events() - subsumed_base;
        self.stats.bigint_fallbacks += arrayeq_omega::bigint_fallback_events() - fallback_base;
        self.stats.check_time_us = self.started.elapsed().as_micros() as u64;
        let output_fingerprints = output_fingerprints(&outputs, self.fps.as_ref());
        Ok(Report {
            verdict,
            diagnostics: std::mem::take(&mut self.diagnostics),
            witnesses: Vec::new(),
            stats: self.stats,
            outputs_checked: outputs,
            output_fingerprints,
            output_domain_hashes: domain_hashes,
            budget_exhausted: self.budget_reason.take(),
        })
    }

    /// Records an out-of-fragment obligation: this output's verdict is
    /// withheld (the run ends inconclusive with a typed reason) while every
    /// other output's check still runs.
    fn note_unsupported(&mut self, reason: BudgetExhausted, output: &str) {
        self.exhausted = true;
        if self.budget_reason.is_none() {
            self.budget_reason = Some(reason);
        }
        arrayeq_trace::event_with("output_verdict", || {
            vec![
                arrayeq_trace::s("output", output.to_owned()),
                arrayeq_trace::b("ok", false),
            ]
        });
    }

    /// Stamps every diagnostic produced since `start` with the output array
    /// whose check produced it, so downstream consumers (witness engine,
    /// reports) know which index space a failing domain lives in.
    fn stamp_output(&mut self, start: usize, output: &str) {
        for d in &mut self.diagnostics[start..] {
            if d.output_array.is_none() {
                d.output_array = Some(output.to_owned());
            }
        }
    }

    pub(crate) fn budget(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.work += 1;
        if let Some(shared) = self.shared_budget {
            return self.budget_shared(shared);
        }
        if self.work > self.opts.max_work {
            self.exhausted = true;
            self.budget_reason = Some(BudgetExhausted::WorkLimit {
                max_work: self.opts.max_work,
            });
            return false;
        }
        // Deadline and cancellation are polled on the first visit and every
        // 64 visits after that: prompt enough to wind down in microseconds,
        // cheap enough to vanish against the relation algebra per visit.
        if (self.work == 1 || self.work & 0x3f == 0)
            && (self.ctx.cancel.is_some() || self.ctx.deadline.is_some())
        {
            if self.ctx.cancel.is_some_and(|t| t.is_cancelled()) {
                self.exhausted = true;
                self.budget_reason = Some(BudgetExhausted::Cancelled);
                return false;
            }
            if self.ctx.deadline.is_some_and(|d| Instant::now() >= d) {
                self.exhausted = true;
                self.budget_reason = Some(BudgetExhausted::DeadlineExceeded {
                    elapsed_ms: self.started.elapsed().as_millis() as u64,
                });
                return false;
            }
        }
        true
    }

    /// Budget bookkeeping for a parallel worker: local visit counts are
    /// flushed into the run-wide [`SharedBudget`] every 64 visits (and on
    /// the very first), at which point the worker observes trips from other
    /// workers, checks the combined work limit, and polls
    /// cancellation/deadline exactly like the sequential path.
    fn budget_shared(&mut self, shared: &SharedBudget) -> bool {
        use std::sync::atomic::Ordering;
        // Flush every 64 visits — tightened to the budget itself when the
        // work limit is smaller than one batch, so a tiny `max_work` still
        // trips promptly instead of hiding inside unflushed batches.
        let due = if self.work == 1 {
            true
        } else if self.opts.max_work >= 64 {
            self.work & 0x3f == 0
        } else {
            self.work.is_multiple_of(self.opts.max_work.max(1))
        };
        if !due {
            return true;
        }
        let delta = self.work - self.flushed_work;
        self.flushed_work = self.work;
        let total = shared.work.fetch_add(delta, Ordering::Relaxed) + delta;
        if shared.exhausted.load(Ordering::Relaxed) {
            self.exhausted = true;
            return false;
        }
        if total > self.opts.max_work {
            self.exhausted = true;
            shared.trip(BudgetExhausted::WorkLimit {
                max_work: self.opts.max_work,
            });
            return false;
        }
        if self.ctx.cancel.is_some_and(|t| t.is_cancelled()) {
            self.exhausted = true;
            shared.trip(BudgetExhausted::Cancelled);
            return false;
        }
        if self.ctx.deadline.is_some_and(|d| Instant::now() >= d) {
            self.exhausted = true;
            shared.trip(BudgetExhausted::DeadlineExceeded {
                elapsed_ms: self.started.elapsed().as_millis() as u64,
            });
            return false;
        }
        true
    }

    /// The core synchronized traversal: checks that the sub-computations at
    /// `pos_a` / `pos_b` agree for every output element in the (common)
    /// domain of `map_a` / `map_b`.
    pub(crate) fn check(
        &mut self,
        pos_a: Pos,
        map_a: Relation,
        pos_b: Pos,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        if !self.budget() {
            return Ok(false);
        }
        if map_a.is_empty() {
            return Ok(true); // nothing left to account for on this branch
        }

        // Resolve Access nodes: compose the output-current mapping with the
        // dependency mapping (the paper's intermediate variable reduction
        // happens when the resulting array is then looked through below).
        if let Pos::Node(n) = &pos_a {
            if let Node::Access {
                array,
                mapping,
                statement,
                ..
            } = self.a.node(*n)
            {
                self.stats.compositions += 1;
                let new_map = {
                    let _span = arrayeq_trace::span("compose");
                    let t0 = arrayeq_trace::metrics_timer();
                    let m = map_a.compose(mapping)?.simplified(true);
                    arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Composition, t0);
                    m
                };
                let mut trail = trail_a.to_vec();
                trail.push(statement.clone());
                return self.check(
                    Pos::Array(array.clone()),
                    new_map,
                    pos_b,
                    map_b,
                    &trail,
                    trail_b,
                );
            }
        }
        if let Pos::Node(n) = &pos_b {
            if let Node::Access {
                array,
                mapping,
                statement,
                ..
            } = self.b.node(*n)
            {
                self.stats.compositions += 1;
                let new_map = {
                    let _span = arrayeq_trace::span("compose");
                    let t0 = arrayeq_trace::metrics_timer();
                    let m = map_b.compose(mapping)?.simplified(true);
                    arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Composition, t0);
                    m
                };
                let mut trail = trail_b.to_vec();
                trail.push(statement.clone());
                return self.check(
                    pos_a,
                    map_a,
                    Pos::Array(array.clone()),
                    new_map,
                    trail_a,
                    &trail,
                );
            }
        }

        // Focused checking: declared intermediate correspondences terminate
        // the traversal early.
        if let (Pos::Array(va), Pos::Array(vb)) = (&pos_a, &pos_b) {
            if let Some(focus) = &self.opts.focus {
                if focus
                    .intermediate_pairs
                    .iter()
                    .any(|(x, y)| x == va && y == vb)
                {
                    return self.compare_leaf_mappings(va, vb, &map_a, &map_b, trail_a, trail_b);
                }
            }
        }

        // Baseline consult (incremental re-verification): proven entries
        // carried over from an earlier run discharge the sub-traversal
        // before either tabling level.  Baselines hold only positive,
        // assumption-free sub-proofs (the exporter snapshots a shared table,
        // which the publish guard below feeds), so a hit returns exactly
        // what the traversal would re-derive and failures always re-derive
        // their diagnostics in full.
        let shared_key = self.shared_key(&pos_a, &pos_b, &map_a, &map_b);
        if let (Some(k), Some(baseline)) = (shared_key.as_ref(), self.ctx.baseline) {
            if baseline.contains(k) {
                self.stats.baseline_hits += 1;
                arrayeq_trace::discharge("baseline");
                return Ok(true);
            }
        }

        // Tabling.
        let table_key = self.table_key(&pos_a, &pos_b, &map_a, &map_b);
        if self.opts.tabling {
            if let Some(k) = table_key.as_ref() {
                self.stats.table_lookups += 1;
                if let Some(&cached) = self.table.get(k) {
                    self.stats.table_hits += 1;
                    arrayeq_trace::discharge("local_table");
                    #[cfg(debug_assertions)]
                    self.check_for_hash_collision(k, &map_a, &map_b);
                    return Ok(cached);
                }
            }
        }

        // Cross-query shared table (engine sessions only): consulted after a
        // local miss, keyed by content fingerprints so an entry published by
        // any earlier query — same pair re-checked after an edit, or a
        // perturbed variant sharing this sub-computation — discharges the
        // whole sub-traversal here.
        if let (Some(k), Some(shared)) = (shared_key.as_ref(), self.ctx.shared_table) {
            self.stats.shared_table_lookups += 1;
            if let Some((true, provenance)) = shared.get_with_provenance(k) {
                self.stats.shared_table_hits += 1;
                if provenance == TableProvenance::Store {
                    self.stats.store_hits += 1;
                    arrayeq_trace::discharge("store");
                } else {
                    arrayeq_trace::discharge("shared_table");
                }
                return Ok(true);
            }
        }

        #[cfg(debug_assertions)]
        let shadow_val = match &table_key {
            Some(TableKey::Fp(..)) | Some(TableKey::Positional(..)) => {
                Some((map_a.canonical_key(), map_b.canonical_key()))
            }
            _ => None,
        };

        let assumption_uses_before = self.assumption_uses;
        let result = self.check_uncached(&pos_a, map_a, &pos_b, map_b, trail_a, trail_b)?;

        if self.opts.tabling {
            if let Some(k) = table_key {
                // Only successful sub-proofs are reused; failures keep their
                // diagnostics specific to the path that found them.  A proof
                // that leaned on a coinductive recurrence assumption is only
                // valid under that assumption and must not be replayed
                // outside it, so it is not inserted either.
                if result && self.assumption_uses == assumption_uses_before {
                    #[cfg(debug_assertions)]
                    if let Some(v) = shadow_val {
                        self.table_shadow.insert(k.clone(), v);
                    }
                    self.table.insert(k, true);
                    self.stats.table_entries += 1;
                    // Publish assumption-free sub-proofs for later queries.
                    if let (Some(sk), Some(shared)) = (shared_key, self.ctx.shared_table) {
                        shared.put(sk, true);
                        self.stats.shared_table_inserts += 1;
                    }
                }
            }
        }
        Ok(result)
    }

    /// Builds the cross-query tabling key for a position pair: the content
    /// fingerprints of both positions plus the structural hashes of both
    /// mappings.  `None` outside an engine session or with tabling disabled.
    fn shared_key(
        &self,
        pos_a: &Pos,
        pos_b: &Pos,
        map_a: &Relation,
        map_b: &Relation,
    ) -> Option<SharedTableKey> {
        if !self.opts.tabling {
            return None;
        }
        let (fa, fb) = self.fps.as_ref()?;
        let pa = match pos_a {
            Pos::Node(n) => fa.node(*n),
            Pos::Array(v) => fa.array(v),
        };
        let pb = match pos_b {
            Pos::Node(n) => fb.node(*n),
            Pos::Array(v) => fb.array(v),
        };
        Some((pa, pb, map_a.structural_hash(), map_b.structural_hash()))
    }

    /// Dense integer id of a traversal position: node positions map to
    /// `2·NodeId`, array positions to `2·id + 1` with ids handed out on
    /// first sight, so the two kinds never collide and the tabling key
    /// stays integer-only for every position pair.
    fn pos_id(&mut self, original_side: bool, pos: &Pos) -> usize {
        match pos {
            Pos::Node(n) => n << 1,
            Pos::Array(v) => {
                let ids = if original_side {
                    &mut self.array_ids_a
                } else {
                    &mut self.array_ids_b
                };
                // get-then-insert: the name is only cloned the first time an
                // array is seen, keeping the per-lookup path allocation-free.
                let id = match ids.get(v) {
                    Some(&id) => id,
                    None => {
                        let next = ids.len();
                        ids.insert(v.clone(), next);
                        next
                    }
                };
                (id << 1) | 1
            }
        }
    }

    /// Builds the tabling key for a position pair.
    ///
    /// On the default path the key is fully *rename-invariant* — two
    /// content fingerprints plus the two rename-canonical structural hashes
    /// (no string allocation, four `u64` loads) — so structurally identical
    /// sub-proofs table-hit even when they live at different statements or
    /// were written over differently-named iterators.  `position_table_keys`
    /// switches positions back to per-graph ids (the pre-PR4 baseline for
    /// the hit-rate comparison).  The legacy path (`string_table_keys`) uses
    /// the seed's key *construction* — a deep `simplified(true)` pass and a
    /// debug-format rendering of every conjunct, per map, per lookup — but
    /// over this repo's wider tabling coverage (the seed only keyed
    /// node/node pairs), so it isolates the keying cost, not the seed's
    /// overall behaviour; the faithful end-to-end baseline is the
    /// pre-refactor measurement recorded in `BENCH_PR1.json`.
    fn table_key(
        &mut self,
        pos_a: &Pos,
        pos_b: &Pos,
        map_a: &Relation,
        map_b: &Relation,
    ) -> Option<TableKey> {
        if !self.opts.tabling {
            return None;
        }
        if self.opts.fingerprint_table_keys() {
            return self
                .shared_key(pos_a, pos_b, map_a, map_b)
                .map(|(fa, fb, ha, hb)| TableKey::Fp(fa, fb, ha, hb));
        }
        let da = self.pos_id(true, pos_a);
        let db = self.pos_id(false, pos_b);
        Some(if self.opts.string_table_keys {
            TableKey::Text(da, db, legacy_key(map_a), legacy_key(map_b))
        } else {
            TableKey::Positional(da, db, map_a.structural_hash(), map_b.structural_hash())
        })
    }

    /// Debug-build cross-check: a table hit whose canonical renderings differ
    /// from the stored ones means two distinct relations collided on the same
    /// 64-bit structural hash.
    #[cfg(debug_assertions)]
    fn check_for_hash_collision(&mut self, key: &TableKey, map_a: &Relation, map_b: &Relation) {
        if matches!(key, TableKey::Text(..)) {
            return;
        }
        if let Some((ka, kb)) = self.table_shadow.get(key) {
            if *ka != map_a.canonical_key() || *kb != map_b.canonical_key() {
                self.stats.hash_collisions += 1;
                debug_assert!(
                    false,
                    "structural_hash collision in the tabling cache: {key:?}"
                );
            }
        }
    }

    fn check_uncached(
        &mut self,
        pos_a: &Pos,
        map_a: Relation,
        pos_b: &Pos,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        match (pos_a, pos_b) {
            // Both sides are at an array variable.
            (Pos::Array(va), Pos::Array(vb)) => {
                let a_is_leaf = self.a.is_input(va);
                let b_is_leaf = self.b.is_input(vb);
                match (a_is_leaf, b_is_leaf) {
                    (true, true) => {
                        self.compare_leaf_mappings(va, vb, &map_a, &map_b, trail_a, trail_b)
                    }
                    (true, false) => {
                        // Reduce the transformed side.
                        self.reduce_side_b(pos_a.clone(), map_a, vb, map_b, trail_a, trail_b)
                    }
                    (false, _) => {
                        // Check for a recurrence assumption before reducing.
                        if let Some(assumed) = self.in_progress.get(&(va.clone(), vb.clone())) {
                            let needed = map_a.inverse().compose(&map_b)?;
                            self.stats.mapping_equalities += 1;
                            if needed.is_subset(assumed)? {
                                self.assumption_uses += 1;
                                arrayeq_trace::discharge("coinduction");
                                return Ok(true);
                            }
                            // Outside the assumed element pairs: fall through
                            // and reduce (bounded because def-use order is
                            // well-founded).
                        }
                        self.reduce_side_a(va, map_a, pos_b.clone(), map_b, trail_a, trail_b)
                    }
                }
            }
            // One side still inside an operator tree, the other at an array.
            (Pos::Array(va), Pos::Node(nb)) => {
                if self.a.is_input(va) {
                    // The leaf reads as the single term of a chain, so an
                    // operator side that normalises (`X + 0`, `X * 1`,
                    // `-(-X)`) gets the algebraic treatment before this is
                    // declared a mismatch.
                    let g = self.b;
                    if let Node::Operator {
                        kind, statement, ..
                    } = g.node(*nb)
                    {
                        if let Some(family) = normalize::family_against_leaf(
                            kind,
                            &self.opts.operators,
                            self.opts.method,
                        ) {
                            return self.check_algebraic(
                                &family,
                                pos_a.clone(),
                                map_a,
                                pos_b.clone(),
                                map_b,
                                trail_a,
                                &with_stmt(trail_b, statement),
                            );
                        }
                    }
                    self.report_operator_vs_leaf(va, pos_b, &map_a, &map_b, trail_a, trail_b, true);
                    Ok(false)
                } else {
                    self.reduce_side_a(&va.clone(), map_a, pos_b.clone(), map_b, trail_a, trail_b)
                }
            }
            (Pos::Node(na), Pos::Array(vb)) => {
                if self.b.is_input(vb) {
                    let g = self.a;
                    if let Node::Operator {
                        kind, statement, ..
                    } = g.node(*na)
                    {
                        if let Some(family) = normalize::family_against_leaf(
                            kind,
                            &self.opts.operators,
                            self.opts.method,
                        ) {
                            return self.check_algebraic(
                                &family,
                                pos_a.clone(),
                                map_a,
                                pos_b.clone(),
                                map_b,
                                &with_stmt(trail_a, statement),
                                trail_b,
                            );
                        }
                    }
                    self.report_operator_vs_leaf(
                        vb, pos_a, &map_b, &map_a, trail_b, trail_a, false,
                    );
                    Ok(false)
                } else {
                    self.reduce_side_b(pos_a.clone(), map_a, &vb.clone(), map_b, trail_a, trail_b)
                }
            }
            // Both sides inside operator trees.
            (Pos::Node(na), Pos::Node(nb)) => {
                self.check_nodes(*na, map_a, *nb, map_b, trail_a, trail_b)
            }
        }
    }

    /// Reduces an intermediate (or output) array on the original side:
    /// splits the current domain across the array's definitions.
    fn reduce_side_a(
        &mut self,
        va: &str,
        map_a: Relation,
        pos_b: Pos,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        let key = self.recurrence_key(va, &pos_b);
        if let Some(k) = &key {
            let pairs = map_a.inverse().compose(&map_b)?;
            self.in_progress.insert(k.clone(), pairs);
        }
        let defs: Vec<_> = self.a.definitions(va).to_vec();
        let mut ok = true;
        for def in &defs {
            let sub_a = map_a.restrict_range(&def.elements)?.simplified(true);
            if sub_a.is_empty() {
                continue;
            }
            let sub_domain = sub_a.domain();
            let sub_b = map_b.restrict_domain(&sub_domain)?.simplified(true);
            let mut trail = trail_a.to_vec();
            trail.push(def.statement.clone());
            let _span = arrayeq_trace::span_with("definition", || {
                vec![
                    arrayeq_trace::s("array", va.to_owned()),
                    arrayeq_trace::s("statement", def.statement.clone()),
                ]
            });
            ok &= self.check(
                Pos::Node(def.root),
                sub_a,
                pos_b.clone(),
                sub_b,
                &trail,
                trail_b,
            )?;
        }
        if let Some(k) = key {
            self.in_progress.remove(&k);
        }
        Ok(ok)
    }

    /// Reduces an intermediate (or output) array on the transformed side.
    fn reduce_side_b(
        &mut self,
        pos_a: Pos,
        map_a: Relation,
        vb: &str,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        let defs: Vec<_> = self.b.definitions(vb).to_vec();
        let mut ok = true;
        for def in &defs {
            let sub_b = map_b.restrict_range(&def.elements)?.simplified(true);
            if sub_b.is_empty() {
                continue;
            }
            let sub_domain = sub_b.domain();
            let sub_a = map_a.restrict_domain(&sub_domain)?.simplified(true);
            let mut trail = trail_b.to_vec();
            trail.push(def.statement.clone());
            let _span = arrayeq_trace::span_with("definition", || {
                vec![
                    arrayeq_trace::s("array", vb.to_owned()),
                    arrayeq_trace::s("statement", def.statement.clone()),
                ]
            });
            ok &= self.check(
                pos_a.clone(),
                sub_a,
                Pos::Node(def.root),
                sub_b,
                trail_a,
                &trail,
            )?;
        }
        Ok(ok)
    }

    fn recurrence_key(&self, va: &str, pos_b: &Pos) -> Option<(String, String)> {
        if let Pos::Array(vb) = pos_b {
            Some((va.to_owned(), vb.clone()))
        } else {
            None
        }
    }

    /// Both traversals reached input arrays: the end of a pair of
    /// corresponding paths.  Check the second part of the sufficient
    /// condition — identical output-input mappings.
    fn compare_leaf_mappings(
        &mut self,
        va: &str,
        vb: &str,
        map_a: &Relation,
        map_b: &Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        self.stats.paths_compared += 1;
        if va != vb {
            self.diagnostics.push(Diagnostic {
                kind: DiagnosticKind::LeafMismatch,
                output_array: None,
                original_statements: trail_a.to_vec(),
                transformed_statements: trail_b.to_vec(),
                expressions: vec![va.to_owned(), vb.to_owned()],
                original_mapping: Some(map_a.to_string()),
                transformed_mapping: Some(map_b.to_string()),
                message: format!(
                    "corresponding paths end at different input arrays `{va}` and `{vb}`"
                ),
                failing_domain: None,
            });
            return Ok(false);
        }
        self.stats.mapping_equalities += 1;
        if map_a.is_equal(map_b)? {
            return Ok(true);
        }
        let only_a = map_a.subtract(map_b)?;
        let only_b = map_b.subtract(map_a)?;
        // Minimized so the diagnostic renders without redundant constraints.
        let failing = only_a.union(&only_b)?.domain().minimized();
        self.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::MappingMismatch,
            output_array: None,
            original_statements: trail_a.to_vec(),
            transformed_statements: trail_b.to_vec(),
            expressions: vec![va.to_owned()],
            original_mapping: Some(map_a.to_string()),
            transformed_mapping: Some(map_b.to_string()),
            message: format!("paths reading `{va}` have different output-input mappings"),
            failing_domain: Some(failing),
        });
        Ok(false)
    }

    /// The generic "different computations" diagnostic shared by the node
    /// pairs that neither normalise nor compare structurally.
    fn report_computation_mismatch(
        &mut self,
        expr_a: String,
        expr_b: String,
        map_a: &Relation,
        map_b: &Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) {
        self.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::OperatorMismatch,
            output_array: None,
            original_statements: trail_a.to_vec(),
            transformed_statements: trail_b.to_vec(),
            expressions: vec![expr_a, expr_b],
            original_mapping: Some(map_a.to_string()),
            transformed_mapping: Some(map_b.to_string()),
            message: "corresponding paths apply different computations".into(),
            failing_domain: None,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn report_operator_vs_leaf(
        &mut self,
        leaf: &str,
        node_pos: &Pos,
        leaf_map: &Relation,
        node_map: &Relation,
        leaf_trail: &[String],
        node_trail: &[String],
        leaf_is_original: bool,
    ) {
        let node_text = match node_pos {
            Pos::Node(n) => {
                let g = if leaf_is_original { self.b } else { self.a };
                describe_node(g, *n)
            }
            Pos::Array(v) => v.clone(),
        };
        let (orig_stmts, trans_stmts, orig_map, trans_map) = if leaf_is_original {
            (leaf_trail.to_vec(), node_trail.to_vec(), leaf_map, node_map)
        } else {
            (node_trail.to_vec(), leaf_trail.to_vec(), node_map, leaf_map)
        };
        self.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::OperatorMismatch,
            output_array: None,
            original_statements: orig_stmts,
            transformed_statements: trans_stmts,
            expressions: vec![leaf.to_owned(), node_text],
            original_mapping: Some(orig_map.to_string()),
            transformed_mapping: Some(trans_map.to_string()),
            message: format!(
                "one path reached input `{leaf}` while the corresponding path is still applying operators"
            ),
            failing_domain: None,
        });
    }

    /// Both positions are operator/constant nodes.
    fn check_nodes(
        &mut self,
        na: NodeId,
        map_a: Relation,
        nb: NodeId,
        map_b: Relation,
        trail_a: &[String],
        trail_b: &[String],
    ) -> Result<bool> {
        match (self.a.node(na).clone(), self.b.node(nb).clone()) {
            (Node::Const { value: va, .. }, Node::Const { value: vb, .. }) => {
                if va == vb {
                    Ok(true)
                } else {
                    self.diagnostics.push(Diagnostic {
                        kind: DiagnosticKind::OperatorMismatch,
                        output_array: None,
                        original_statements: trail_a.to_vec(),
                        transformed_statements: trail_b.to_vec(),
                        expressions: vec![va.to_string(), vb.to_string()],
                        original_mapping: Some(map_a.to_string()),
                        transformed_mapping: Some(map_b.to_string()),
                        message: format!("constants differ: {va} vs {vb}"),
                        failing_domain: None,
                    });
                    Ok(false)
                }
            }
            (
                Node::Operator {
                    kind: ka,
                    operands: oa,
                    statement: sa,
                },
                Node::Operator {
                    kind: kb,
                    operands: ob,
                    statement: sb,
                },
            ) => {
                // The normalization subsystem decides whether the two roots
                // share a chain family (`+`/`-`/negation fold together, `*`
                // against `+` reads additively through distribution, …).
                if let Some(family) =
                    normalize::chain_family(&ka, &kb, &self.opts.operators, self.opts.method)
                {
                    return self.check_algebraic(
                        &family,
                        Pos::Node(na),
                        map_a,
                        Pos::Node(nb),
                        map_b,
                        &with_stmt(trail_a, &sa),
                        &with_stmt(trail_b, &sb),
                    );
                }
                if ka != kb {
                    self.diagnostics.push(Diagnostic {
                        kind: DiagnosticKind::OperatorMismatch,
                        output_array: None,
                        original_statements: with_stmt(trail_a, &sa),
                        transformed_statements: with_stmt(trail_b, &sb),
                        expressions: vec![describe_node(self.a, na), describe_node(self.b, nb)],
                        original_mapping: Some(map_a.to_string()),
                        transformed_mapping: Some(map_b.to_string()),
                        message: format!("operators differ: `{ka}` vs `{kb}`"),
                        failing_domain: None,
                    });
                    return Ok(false);
                }
                if oa.len() != ob.len() {
                    self.diagnostics.push(Diagnostic {
                        kind: DiagnosticKind::Structural,
                        output_array: None,
                        original_statements: with_stmt(trail_a, &sa),
                        transformed_statements: with_stmt(trail_b, &sb),
                        expressions: vec![describe_node(self.a, na), describe_node(self.b, nb)],
                        original_mapping: None,
                        transformed_mapping: None,
                        message: format!(
                            "operator `{ka}` has {} operands in the original and {} in the transformed program",
                            oa.len(),
                            ob.len()
                        ),
                        failing_domain: None,
                    });
                    return Ok(false);
                }
                let mut ok = true;
                for (x, y) in oa.iter().zip(ob.iter()) {
                    ok &= self.check(
                        Pos::Node(*x),
                        map_a.clone(),
                        Pos::Node(*y),
                        map_b.clone(),
                        &with_stmt(trail_a, &sa),
                        &with_stmt(trail_b, &sb),
                    )?;
                }
                Ok(ok)
            }
            // An operator root against a constant: the chain may *fold* to
            // a constant (`x * 0` vs `0`, `2 + 3` vs `5`), so chains whose
            // family folds constants get the algebraic treatment; anything
            // else is the generic computation mismatch below.
            (
                Node::Operator {
                    kind, statement, ..
                },
                Node::Const {
                    value,
                    statement: sb,
                },
            ) => {
                if let Some(family) =
                    normalize::family_against_const(&kind, &self.opts.operators, self.opts.method)
                {
                    return self.check_algebraic(
                        &family,
                        Pos::Node(na),
                        map_a,
                        Pos::Node(nb),
                        map_b,
                        &with_stmt(trail_a, &statement),
                        &with_stmt(trail_b, &sb),
                    );
                }
                self.report_computation_mismatch(
                    describe_node(self.a, na),
                    value.to_string(),
                    &map_a,
                    &map_b,
                    trail_a,
                    trail_b,
                );
                Ok(false)
            }
            (
                Node::Const {
                    value,
                    statement: sa,
                },
                Node::Operator {
                    kind, statement, ..
                },
            ) => {
                if let Some(family) =
                    normalize::family_against_const(&kind, &self.opts.operators, self.opts.method)
                {
                    return self.check_algebraic(
                        &family,
                        Pos::Node(na),
                        map_a,
                        Pos::Node(nb),
                        map_b,
                        &with_stmt(trail_a, &sa),
                        &with_stmt(trail_b, &statement),
                    );
                }
                self.report_computation_mismatch(
                    value.to_string(),
                    describe_node(self.b, nb),
                    &map_a,
                    &map_b,
                    trail_a,
                    trail_b,
                );
                Ok(false)
            }
            (a_node, b_node) => {
                self.report_computation_mismatch(
                    node_brief(self.a, na, &a_node),
                    node_brief(self.b, nb, &b_node),
                    &map_a,
                    &map_b,
                    trail_a,
                    trail_b,
                );
                Ok(false)
            }
        }
    }
}

/// The seed's original tabling key *construction*: a full deep
/// simplification (per-conjunct feasibility) followed by a sorted
/// debug-format rendering — paid again on every single lookup.  Note the
/// seed applied this to node/node pairs only; under
/// [`CheckOptions::string_table_keys`] it runs over the current (wider)
/// tabling coverage, so it measures the keying cost in isolation.
fn legacy_key(map: &Relation) -> String {
    let mut parts: Vec<String> = map
        .simplified(true)
        .conjuncts()
        .iter()
        .map(|c| format!("{c:?}"))
        .collect();
    parts.sort();
    parts.join(" | ")
}

pub(crate) fn with_stmt(trail: &[String], stmt: &str) -> Vec<String> {
    let mut t = trail.to_vec();
    if t.last().map(|s| s.as_str()) != Some(stmt) {
        t.push(stmt.to_owned());
    }
    t
}

fn node_brief(g: &Addg, id: NodeId, node: &Node) -> String {
    match node {
        Node::Const { value, .. } => value.to_string(),
        _ => describe_node(g, id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CancelToken;
    use arrayeq_lang::corpus::*;

    fn check(a: &str, b: &str, opts: &CheckOptions) -> Report {
        verify_source(a, b, opts).expect("verification pipeline runs")
    }

    #[test]
    fn every_program_is_equivalent_to_itself() {
        for (name, src) in FIG1_ALL.iter().chain(KERNELS.iter()) {
            let r = check(src, src, &CheckOptions::default());
            assert!(r.is_equivalent(), "{name} vs itself: {}", r.summary());
        }
    }

    #[test]
    fn fig1_a_equals_b_with_basic_method() {
        // (b) is obtained from (a) by expression propagation and loop
        // transformations only, which the basic method must handle.
        let r = check(FIG1_A, FIG1_B, &CheckOptions::basic());
        assert!(r.is_equivalent(), "{}", r.summary());
        assert!(r.stats.paths_compared >= 4);
    }

    #[test]
    fn fig1_a_equals_c_needs_the_extended_method() {
        let extended = check(FIG1_A, FIG1_C, &CheckOptions::default());
        assert!(extended.is_equivalent(), "{}", extended.summary());
        assert!(extended.stats.flattenings > 0);
        assert!(extended.stats.matchings > 0);

        // The basic method cannot pair the algebraically shuffled paths.
        let basic = check(FIG1_A, FIG1_C, &CheckOptions::basic());
        assert!(!basic.is_equivalent());
    }

    #[test]
    fn fig1_b_equals_c_and_order_does_not_matter() {
        let r1 = check(FIG1_B, FIG1_C, &CheckOptions::default());
        assert!(r1.is_equivalent(), "{}", r1.summary());
        let r2 = check(FIG1_C, FIG1_B, &CheckOptions::default());
        assert!(r2.is_equivalent(), "{}", r2.summary());
    }

    #[test]
    fn fig1_d_is_rejected_with_diagnostics_pointing_at_v3_and_v1() {
        let r = check(FIG1_A, FIG1_D, &CheckOptions::default());
        assert!(!r.is_equivalent());
        assert!(!r.diagnostics.is_empty());
        // Section 6.1: the failing paths involve statements v3 and v1 of the
        // transformed program; the blame heuristic should surface them.
        let mentioned: Vec<String> = r
            .diagnostics
            .iter()
            .flat_map(|d| d.transformed_statements.clone())
            .collect();
        assert!(
            mentioned.iter().any(|s| s == "v3") || mentioned.iter().any(|s| s == "v1"),
            "diagnostics should mention v3 or v1, got {mentioned:?}\n{}",
            r.summary()
        );
        let blame = r.blame();
        assert!(!blame.is_empty());
    }

    #[test]
    fn direction_is_symmetric_for_the_paper_pairs() {
        assert!(check(FIG1_C, FIG1_A, &CheckOptions::default()).is_equivalent());
        assert!(!check(FIG1_D, FIG1_A, &CheckOptions::default()).is_equivalent());
    }

    #[test]
    fn recurrence_kernel_is_equivalent_to_itself_and_detects_a_broken_base_case() {
        let r = check(
            KERNEL_RECURRENCE,
            KERNEL_RECURRENCE,
            &CheckOptions::default(),
        );
        assert!(r.is_equivalent(), "{}", r.summary());

        let broken = KERNEL_RECURRENCE.replace("Y[0] = X[0] + 0;", "Y[0] = X[0] + 1;");
        let r = check(KERNEL_RECURRENCE, &broken, &CheckOptions::default());
        assert!(!r.is_equivalent());
    }

    #[test]
    fn tabling_can_be_disabled() {
        let with = check(FIG1_A, FIG1_C, &CheckOptions::default());
        let without = check(FIG1_A, FIG1_C, &CheckOptions::default().without_tabling());
        assert!(with.is_equivalent() && without.is_equivalent());
        assert_eq!(without.stats.table_hits, 0);
        assert_eq!(without.stats.table_lookups, 0);
        assert_eq!(without.stats.table_entries, 0);
    }

    #[test]
    fn hash_and_string_table_keys_agree() {
        // Positional hashed keys and the legacy text keys identify exactly
        // the same sub-problems, so verdicts and the traversal shape match;
        // the default fingerprint keys are at least as sharing (they unify
        // structurally identical positions) and never change the verdict.
        for (a, b) in [(FIG1_A, FIG1_C), (FIG1_A, FIG1_D)] {
            let hashed = check(a, b, &CheckOptions::default().with_position_table_keys());
            let text = check(a, b, &CheckOptions::default().with_string_table_keys());
            assert_eq!(hashed.verdict, text.verdict);
            assert_eq!(hashed.stats.table_lookups, text.stats.table_lookups);
            assert_eq!(hashed.stats.table_hits, text.stats.table_hits);
            assert_eq!(hashed.stats.table_entries, text.stats.table_entries);
            // The debug-build collision cross-check ran on every hit.
            assert_eq!(hashed.stats.hash_collisions, 0);

            let fp = check(a, b, &CheckOptions::default());
            assert_eq!(fp.verdict, hashed.verdict);
            assert!(
                fp.stats.table_hits >= hashed.stats.table_hits,
                "rename-invariant keys can only widen sharing: {} < {}",
                fp.stats.table_hits,
                hashed.stats.table_hits
            );
            assert_eq!(fp.stats.hash_collisions, 0);
        }
    }

    #[test]
    fn parallel_jobs_reproduce_sequential_verdicts_and_stable_reports() {
        // Equivalent, inequivalent and recurrence pairs at several worker
        // counts: verdicts identical, stable rendering byte-identical.
        let pairs = [
            (FIG1_A, FIG1_B),
            (FIG1_A, FIG1_C),
            (FIG1_A, FIG1_D),
            (KERNEL_RECURRENCE, KERNEL_RECURRENCE),
        ];
        for (a, b) in pairs {
            let seq = check(a, b, &CheckOptions::default());
            for jobs in [2usize, 8] {
                let par = check(a, b, &CheckOptions::default().with_jobs(jobs));
                assert_eq!(seq.verdict, par.verdict, "jobs={jobs}");
                assert_eq!(
                    seq.render_stable(),
                    par.render_stable(),
                    "stable report differs at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn parallel_budget_exhaustion_is_typed_and_prompt() {
        let opts = CheckOptions {
            max_work: 3,
            jobs: 4,
            ..Default::default()
        };
        let r = check(FIG1_A, FIG1_C, &opts);
        assert_eq!(r.verdict, Verdict::Inconclusive);
        assert_eq!(
            r.budget_exhausted,
            Some(BudgetExhausted::WorkLimit { max_work: 3 })
        );

        // A pre-cancelled token stops every worker.
        let token = CancelToken::new();
        token.cancel();
        let ctx = CheckContext {
            cancel: Some(&token),
            ..Default::default()
        };
        let a = parse_program(FIG1_A).unwrap();
        let c = parse_program(FIG1_C).unwrap();
        let r = verify_programs_with(&a, &c, &CheckOptions::default().with_jobs(4), &ctx).unwrap();
        assert_eq!(r.verdict, Verdict::Inconclusive);
        assert_eq!(r.budget_exhausted, Some(BudgetExhausted::Cancelled));
    }

    #[test]
    fn parallel_focused_checking_matches_sequential() {
        let focus = Focus {
            outputs: vec!["C".into()],
            intermediate_pairs: vec![("tmp".into(), "tmp".into())],
        };
        let seq = check(
            FIG1_A,
            FIG1_B,
            &CheckOptions::default().with_focus(focus.clone()),
        );
        let par = check(
            FIG1_A,
            FIG1_B,
            &CheckOptions::default().with_focus(focus).with_jobs(4),
        );
        assert!(seq.is_equivalent() && par.is_equivalent());
        assert_eq!(seq.outputs_checked, par.outputs_checked);
        assert_eq!(seq.render_stable(), par.render_stable());
    }

    #[test]
    fn table_stats_are_reported() {
        let r = check(FIG1_A, FIG1_C, &CheckOptions::default());
        assert!(r.stats.table_lookups > 0, "tabling keys were constructed");
        assert!(r.stats.table_entries > 0, "sub-proofs were tabled");
        assert!(r.stats.table_hits <= r.stats.table_lookups);
        let rate = r.stats.table_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert!(r.summary().contains("hit rate"));
    }

    #[test]
    fn focused_checking_restricts_outputs() {
        let focus = Focus {
            outputs: vec!["C".into()],
            intermediate_pairs: vec![("tmp".into(), "tmp".into())],
        };
        let r = check(FIG1_A, FIG1_B, &CheckOptions::default().with_focus(focus));
        assert!(r.is_equivalent(), "{}", r.summary());
        assert_eq!(r.outputs_checked, vec!["C".to_string()]);
    }

    #[test]
    fn exhausted_work_budget_is_typed() {
        let opts = CheckOptions {
            max_work: 3,
            ..Default::default()
        };
        let r = check(FIG1_A, FIG1_C, &opts);
        assert_eq!(r.verdict, Verdict::Inconclusive);
        assert_eq!(
            r.budget_exhausted,
            Some(BudgetExhausted::WorkLimit { max_work: 3 })
        );
        assert!(r.summary().contains("work limit"));
    }

    #[test]
    fn cancelled_token_yields_inconclusive_immediately() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = CheckContext {
            cancel: Some(&token),
            ..Default::default()
        };
        let a = parse_program(FIG1_A).unwrap();
        let c = parse_program(FIG1_C).unwrap();
        let r = verify_programs_with(&a, &c, &CheckOptions::default(), &ctx).unwrap();
        assert_eq!(r.verdict, Verdict::Inconclusive);
        assert_eq!(r.budget_exhausted, Some(BudgetExhausted::Cancelled));
    }

    #[test]
    fn expired_deadline_yields_inconclusive_with_reason() {
        let ctx = CheckContext {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        };
        let a = parse_program(FIG1_A).unwrap();
        let c = parse_program(FIG1_C).unwrap();
        let r = verify_programs_with(&a, &c, &CheckOptions::default(), &ctx).unwrap();
        assert_eq!(r.verdict, Verdict::Inconclusive);
        assert!(matches!(
            r.budget_exhausted,
            Some(BudgetExhausted::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn shared_table_discharges_repeat_queries() {
        use std::collections::HashMap as Map;
        use std::sync::Mutex;
        #[derive(Default)]
        struct MapTable(Mutex<Map<SharedTableKey, bool>>);
        impl crate::SharedEquivalenceTable for MapTable {
            fn get(&self, key: &SharedTableKey) -> Option<bool> {
                self.0.lock().unwrap().get(key).copied()
            }
            fn put(&self, key: SharedTableKey, established: bool) {
                self.0.lock().unwrap().insert(key, established);
            }
        }
        let table = MapTable::default();
        let ctx = CheckContext {
            shared_table: Some(&table),
            ..Default::default()
        };
        let a = parse_program(FIG1_A).unwrap();
        let c = parse_program(FIG1_C).unwrap();
        let first = verify_programs_with(&a, &c, &CheckOptions::default(), &ctx).unwrap();
        assert!(first.is_equivalent());
        assert!(first.stats.shared_table_inserts > 0, "sub-proofs published");
        assert_eq!(first.stats.shared_table_hits, 0, "nothing to reuse yet");
        let second = verify_programs_with(&a, &c, &CheckOptions::default(), &ctx).unwrap();
        assert!(second.is_equivalent());
        assert!(
            second.stats.shared_table_hits > 0,
            "re-check reuses published sub-proofs: {:?}",
            second.stats
        );
        assert!(second.stats.combined_hit_rate() > first.stats.combined_hit_rate());
        // The one-shot path never touches a shared table.
        let lone = check(FIG1_A, FIG1_C, &CheckOptions::default());
        assert_eq!(lone.stats.shared_table_lookups, 0);
    }

    #[test]
    fn baseline_proofs_discharge_and_cone_skips_clean_outputs() {
        use std::collections::HashMap as Map;
        use std::sync::Mutex;
        #[derive(Default)]
        struct MapTable(Mutex<Map<SharedTableKey, bool>>);
        impl crate::SharedEquivalenceTable for MapTable {
            fn get(&self, key: &SharedTableKey) -> Option<bool> {
                self.0.lock().unwrap().get(key).copied()
            }
            fn put(&self, key: SharedTableKey, established: bool) {
                self.0.lock().unwrap().insert(key, established);
            }
        }
        // Producing run: publish sub-proofs into a shared table, then turn
        // its contents into a baseline for a fresh, table-free run.
        let table = MapTable::default();
        let ctx = CheckContext {
            shared_table: Some(&table),
            ..Default::default()
        };
        let a = parse_program(FIG1_A).unwrap();
        let c = parse_program(FIG1_C).unwrap();
        let scratch = verify_programs_with(&a, &c, &CheckOptions::default(), &ctx).unwrap();
        assert!(scratch.is_equivalent());
        assert!(
            !scratch.output_fingerprints.is_empty(),
            "fingerprinted runs record per-output fingerprints"
        );
        let baseline = crate::BaselineProofs::from_entries(
            table.0.lock().unwrap().keys().copied().collect::<Vec<_>>(),
        );
        assert!(!baseline.is_empty());

        // Baseline consult alone: every sub-proof replays, verdict and
        // stable rendering identical.
        let ctx2 = CheckContext {
            baseline: Some(&baseline),
            ..Default::default()
        };
        let incremental = verify_programs_with(&a, &c, &CheckOptions::default(), &ctx2).unwrap();
        assert!(
            incremental.stats.baseline_hits > 0,
            "{:?}",
            incremental.stats
        );
        assert_eq!(incremental.render_stable(), scratch.render_stable());

        // Cone focus on top: the (only) output is proven clean by its root
        // key, so the traversal skips it outright — zero path comparisons —
        // while the report still speaks about it.
        let g1 = extract(&a).unwrap();
        let g2 = extract(&c).unwrap();
        let fpa = fingerprints(&g1);
        let fpb = fingerprints(&g2);
        let root = output_root_key(&g1, &g2, (&fpa, &fpb), "C").unwrap();
        assert!(baseline.contains(&root), "root obligation was published");
        let opts = CheckOptions::default().with_assume_clean(vec!["C".into()]);
        let skipped = verify_programs_with(&a, &c, &opts, &ctx2).unwrap();
        assert_eq!(skipped.stats.paths_compared, 0);
        assert_eq!(skipped.stats.cone_positions, 0, "nothing left in the cone");
        assert_eq!(skipped.render_stable(), scratch.render_stable());
        // ...and identically on the parallel path.
        let par = verify_programs_with(&a, &c, &opts.clone().with_jobs(2), &ctx2).unwrap();
        assert_eq!(par.render_stable(), scratch.render_stable());
    }

    #[test]
    fn incomparable_interfaces_are_an_error() {
        let other = r#"
void foo(int A[], int B[], int D[]) {
    int k;
    for (k = 0; k < 4; k++)
s1:     D[k] = A[k] + B[k];
}
"#;
        let err = verify_source(FIG1_A, other, &CheckOptions::default());
        assert!(matches!(err, Err(CoreError::Incomparable { .. })));
    }

    #[test]
    fn swapped_operands_of_a_commutative_operator_are_equivalent() {
        let p1 = r#"
#define N 32
void f(int A[], int B[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
s1:     C[k] = A[k] * B[2*k];
}
"#;
        let p2 = r#"
#define N 32
void f(int A[], int B[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
t1:     C[k] = B[2*k] * A[k];
}
"#;
        assert!(check(p1, p2, &CheckOptions::default()).is_equivalent());
        assert!(!check(p1, p2, &CheckOptions::basic()).is_equivalent());
        // Subtraction is not commutative: swapping its operands must fail.
        let m1 = p1.replace('*', "-");
        let m2 = p2.replace('*', "-");
        assert!(!check(&m1, &m2, &CheckOptions::default()).is_equivalent());
    }

    #[test]
    fn reassociation_across_statements_is_handled() {
        // tmp = x + y; C = tmp + z   vs   C = x + (y + z)
        let p1 = r#"
#define N 16
void f(int X[], int Y[], int Z[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     tmp[k] = X[k] + Y[k];
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k] + Z[k];
}
"#;
        let p2 = r#"
#define N 16
void f(int X[], int Y[], int Z[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
t1:     C[k] = X[k] + (Y[k] + Z[k]);
}
"#;
        assert!(check(p1, p2, &CheckOptions::default()).is_equivalent());
        assert!(!check(p1, p2, &CheckOptions::basic()).is_equivalent());
    }

    #[test]
    fn wrong_index_expression_is_reported_with_mappings() {
        let p1 = r#"
#define N 16
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
s1:     C[k] = A[2*k] + A[k];
}
"#;
        let p2 = r#"
#define N 16
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
t1:     C[k] = A[2*k] + A[k+1];
}
"#;
        let r = check(p1, p2, &CheckOptions::default());
        assert!(!r.is_equivalent());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagnosticKind::MappingMismatch)
            .expect("a mapping mismatch diagnostic");
        assert!(d.original_mapping.is_some());
        assert!(d.transformed_mapping.is_some());
    }

    #[test]
    fn failing_domains_are_structured_and_stamped_with_their_output() {
        let r = check(FIG1_A, FIG1_D, &CheckOptions::default());
        assert!(!r.is_equivalent());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.failing_domain.is_some())
            .expect("a diagnostic with a failing domain");
        assert_eq!(d.output_array.as_deref(), Some("C"));
        let dom = d.failing_domain.as_ref().unwrap();
        // The domain is directly sampleable — no string reparsing anywhere.
        let (point, params) = dom.sample_point().expect("non-empty failing domain");
        assert!(dom.contains(&point, &params));
        // Fig. 1(d) is wrong on even k below N-1.
        assert_eq!(point[0].rem_euclid(2), 0);
    }
}
