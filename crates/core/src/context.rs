//! Cross-query context for a verification run: budgets, cancellation and the
//! shared equivalence-table handle.
//!
//! The free functions of this crate ([`crate::verify_source`] and friends)
//! run one-shot: every call starts with empty caches and the only budget is
//! [`crate::CheckOptions::max_work`].  A long-lived engine (the
//! `arrayeq-engine` crate) instead threads a [`CheckContext`] through
//! [`crate::verify_addgs_with`]: a wall-clock deadline, a cooperative
//! [`CancelToken`], and a [`SharedEquivalenceTable`] whose entries outlive
//! the call so later queries reuse established sub-proofs.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation flag, cloneable and shareable across threads.
///
/// The checker polls the token at traversal checkpoints; once
/// [`CancelToken::cancel`] has been called, the run winds down promptly and
/// returns [`crate::Verdict::Inconclusive`] with
/// [`BudgetExhausted::Cancelled`] — it never hangs and never produces a
/// partial verdict dressed up as a real one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every run polling this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The typed reason behind a [`crate::Verdict::Inconclusive`]: which budget
/// ran out before the traversal could finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetExhausted {
    /// The [`crate::CheckOptions::max_work`] node-pair-visit budget ran out.
    WorkLimit {
        /// The configured budget.
        max_work: u64,
    },
    /// The wall-clock deadline of the context passed mid-traversal.
    DeadlineExceeded {
        /// Milliseconds actually spent when the deadline fired.
        elapsed_ms: u64,
    },
    /// The [`CancelToken`] of the context was cancelled.
    Cancelled,
    /// Solver arithmetic overflowed past the `i128` widening, so a dependence
    /// or feasibility answer was degraded to its conservative direction.  The
    /// run is reported inconclusive rather than risking a verdict built on a
    /// weakened constraint system.
    ArithOverflow {
        /// Number of overflow events the solver recorded during the run.
        events: u64,
    },
    /// An obligation needed an Omega operation outside the exactly decidable
    /// fragment (the solver could not eliminate existential variables
    /// exactly, or a transitive closure left the uniform fragment).  The
    /// obligation is neither proven nor refuted, so the verdict is withheld.
    UnsupportedFragment {
        /// The Omega operation that left the decidable fragment.
        op: &'static str,
    },
    /// A parallel worker task panicked.  The panic was contained to its own
    /// obligation; this reason marks that obligation's verdict as unusable.
    WorkerPanicked {
        /// Best-effort panic payload (message), when one could be extracted.
        message: String,
    },
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExhausted::WorkLimit { max_work } => {
                write!(f, "work limit of {max_work} node-pair visits exhausted")
            }
            BudgetExhausted::DeadlineExceeded { elapsed_ms } => {
                write!(f, "wall-clock deadline exceeded after {elapsed_ms} ms")
            }
            BudgetExhausted::Cancelled => write!(f, "cancelled by caller"),
            BudgetExhausted::ArithOverflow { events } => {
                write!(
                    f,
                    "solver arithmetic overflowed ({events} event{}) — \
                     conservative degradation, verdict withheld",
                    if *events == 1 { "" } else { "s" }
                )
            }
            BudgetExhausted::UnsupportedFragment { op } => {
                write!(
                    f,
                    "an obligation left the exactly decidable Omega fragment \
                     (inexact {op}) — verdict withheld"
                )
            }
            BudgetExhausted::WorkerPanicked { message } => {
                write!(f, "worker task panicked: {message}")
            }
        }
    }
}

/// Key of a cross-query tabling entry: the content fingerprints of the two
/// traversal positions ([`arrayeq_addg::Fingerprints`]) and the structural
/// hashes of the two output-current mappings.  Every component is a stable
/// content hash, so the key means the same thing in every query.
pub type SharedTableKey = (u64, u64, u64, u64);

/// A cross-query store of established sub-equivalences.
///
/// Implementations are expected to be sharded/lock-striped maps shared by
/// every query of one engine.  **Soundness contract:** an entry asserts that
/// the synchronized traversal, run with *the same* [`crate::CheckOptions`],
/// establishes the sub-equivalence behind the key.  Callers must therefore
/// key or segregate stores per options set — the engine does this by fixing
/// its options at construction time.  Only positive verdicts are stored
/// (failures keep their diagnostics specific to the run that found them),
/// and the checker never stores sub-proofs that leaned on a coinductive
/// recurrence assumption.
pub trait SharedEquivalenceTable: Send + Sync {
    /// Looks up an established sub-equivalence.
    fn get(&self, key: &SharedTableKey) -> Option<bool>;
    /// Records an established sub-equivalence.
    fn put(&self, key: SharedTableKey, established: bool);
    /// Looks up an established sub-equivalence together with where it came
    /// from, so the checker can report store-discharged proofs separately
    /// from in-memory hits.  The default maps [`Self::get`] to
    /// [`TableProvenance::Memory`], which is correct for any implementation
    /// that never seeds entries from a persistent store.
    fn get_with_provenance(&self, key: &SharedTableKey) -> Option<(bool, TableProvenance)> {
        self.get(key).map(|e| (e, TableProvenance::Memory))
    }
}

/// Where a [`SharedEquivalenceTable`] answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableProvenance {
    /// Established by a query of this process's session.
    Memory,
    /// Seeded from a persistent on-disk proof store at engine startup.
    Store,
}

/// A read-only store of sub-proofs carried over from an earlier run — the
/// substrate of incremental re-verification.
///
/// Entries use the same key shape as the [`SharedEquivalenceTable`]
/// (content fingerprints plus mapping hashes), and inherit the same
/// soundness contract: every entry asserts a *positive*, *assumption-free*
/// sub-equivalence established under the same [`crate::CheckOptions`].  The
/// guard holds by construction — baselines are exported from a shared
/// table, and the checker only ever publishes there when a sub-proof
/// succeeded without leaning on any in-flight coinductive assumption
/// (`assumption_uses` unchanged around the uncached check).  A consult hit
/// therefore discharges the sub-traversal with exactly the verdict the
/// traversal would re-derive; failures are never stored, so diagnostics and
/// rendered reports are byte-identical to a from-scratch run.
#[derive(Debug, Clone, Default)]
pub struct BaselineProofs {
    entries: std::collections::HashSet<SharedTableKey>,
}

impl BaselineProofs {
    /// Builds a store from previously exported proven entries.
    pub fn from_entries(entries: impl IntoIterator<Item = SharedTableKey>) -> Self {
        Self {
            entries: entries.into_iter().collect(),
        }
    }

    /// Whether the baseline proves the sub-equivalence behind `key`.
    pub fn contains(&self, key: &SharedTableKey) -> bool {
        self.entries.contains(key)
    }

    /// Number of proven entries carried by the baseline.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline carries no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-call context threaded through [`crate::verify_addgs_with`].
///
/// The default context (`CheckContext::default()`) reproduces the one-shot
/// behaviour of the plain free functions exactly: no deadline, no
/// cancellation, no cross-query sharing, no baseline.
#[derive(Default, Clone)]
pub struct CheckContext<'a> {
    /// Cross-query equivalence table, shared between calls and threads.
    pub shared_table: Option<&'a dyn SharedEquivalenceTable>,
    /// Absolute wall-clock deadline for this call.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token polled during the traversal.
    pub cancel: Option<&'a CancelToken>,
    /// Proven sub-proofs from an earlier run, consulted before both table
    /// levels (see [`BaselineProofs`]).
    pub baseline: Option<&'a BaselineProofs>,
}

impl fmt::Debug for CheckContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckContext")
            .field("shared_table", &self.shared_table.is_some())
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel.is_some())
            .field("baseline", &self.baseline.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_through_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn budget_reasons_render() {
        assert!(BudgetExhausted::WorkLimit { max_work: 7 }
            .to_string()
            .contains('7'));
        assert!(BudgetExhausted::DeadlineExceeded { elapsed_ms: 12 }
            .to_string()
            .contains("12 ms"));
        assert!(BudgetExhausted::Cancelled.to_string().contains("cancel"));
        assert!(BudgetExhausted::UnsupportedFragment { op: "subtract" }
            .to_string()
            .contains("subtract"));
    }
}
