//! Error diagnostics (Section 6.1 of the paper).
//!
//! When the sufficient condition fails, the checker does not just answer
//! "not equivalent": it reports *where* the two ADDGs diverge — which
//! statements, which arrays, which index expressions — and applies the
//! paper's blame heuristic (the variable common to several failing paths is
//! the most likely culprit).

use arrayeq_omega::Set;
use std::collections::BTreeMap;
use std::fmt;

/// The kind of divergence a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// Different operators were reached on corresponding paths.
    OperatorMismatch,
    /// Corresponding paths end in different input arrays.
    LeafMismatch,
    /// Corresponding paths end in the same input array but with different
    /// output-input mappings (the Fig. 1(d) failure mode).
    MappingMismatch,
    /// The two functions do not define the same set of output elements.
    OutputDomainMismatch,
    /// The operand lists of an associative/commutative operator could not be
    /// matched one-to-one.
    MatchingFailure,
    /// A structural problem (different number of operands, unsupported
    /// recurrence, ...).
    Structural,
    /// A parallel worker task panicked; the obligation it was proving is
    /// poisoned (reported inconclusive), while every other task's verdict
    /// stands.  The panic payload is carried in the message.
    WorkerPanicked,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticKind::OperatorMismatch => "operator mismatch",
            DiagnosticKind::LeafMismatch => "leaf (input array) mismatch",
            DiagnosticKind::MappingMismatch => "output-input mapping mismatch",
            DiagnosticKind::OutputDomainMismatch => "output domain mismatch",
            DiagnosticKind::MatchingFailure => "operand matching failure",
            DiagnosticKind::Structural => "structural mismatch",
            DiagnosticKind::WorkerPanicked => "worker panic",
        };
        write!(f, "{s}")
    }
}

/// One reported divergence between the original and transformed programs.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// What kind of divergence was found.
    pub kind: DiagnosticKind,
    /// The output array whose check produced this diagnostic.
    pub output_array: Option<String>,
    /// Statement labels on the original-program path involved.
    pub original_statements: Vec<String>,
    /// Statement labels on the transformed-program path involved.
    pub transformed_statements: Vec<String>,
    /// Arrays / index expressions involved (pretty-printed).
    pub expressions: Vec<String>,
    /// The output-input (or output-current) mapping on the original side.
    pub original_mapping: Option<String>,
    /// The output-input (or output-current) mapping on the transformed side.
    pub transformed_mapping: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// The set of output elements for which the divergence occurs, as a
    /// structured integer set over the output array's index space.  The
    /// witness engine samples concrete counterexample points from it and
    /// [`fmt::Display`] renders it for reports — no stringly-typed relation
    /// ever needs reparsing.
    pub failing_domain: Option<Set>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        if let Some(o) = &self.output_array {
            writeln!(f, "  while checking output:  {o}")?;
        }
        if !self.original_statements.is_empty() {
            writeln!(
                f,
                "  original statements:    {}",
                self.original_statements.join(", ")
            )?;
        }
        if !self.transformed_statements.is_empty() {
            writeln!(
                f,
                "  transformed statements: {}",
                self.transformed_statements.join(", ")
            )?;
        }
        if !self.expressions.is_empty() {
            writeln!(f, "  expressions: {}", self.expressions.join("  |  "))?;
        }
        if let Some(m) = &self.original_mapping {
            writeln!(f, "  original mapping:    {m}")?;
        }
        if let Some(m) = &self.transformed_mapping {
            writeln!(f, "  transformed mapping: {m}")?;
        }
        if let Some(d) = &self.failing_domain {
            writeln!(f, "  failing output elements: {d}")?;
        }
        Ok(())
    }
}

/// The blame heuristic of Section 6.1: when several paths fail, the variable
/// (or statement) occurring on *all* failing transformed-side paths is the
/// most likely location of the error.  Returns the suspects ordered by how
/// many failing diagnostics they participate in.
pub fn blame_candidates(diagnostics: &[Diagnostic]) -> Vec<(String, usize)> {
    let failing: Vec<&Diagnostic> = diagnostics
        .iter()
        .filter(|d| {
            matches!(
                d.kind,
                DiagnosticKind::MappingMismatch
                    | DiagnosticKind::LeafMismatch
                    | DiagnosticKind::MatchingFailure
            )
        })
        .collect();
    if failing.is_empty() {
        return Vec::new();
    }
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in &failing {
        for s in &d.transformed_statements {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(String, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: DiagnosticKind, transformed: &[&str]) -> Diagnostic {
        Diagnostic {
            kind,
            output_array: Some("C".into()),
            original_statements: vec!["s1".into()],
            transformed_statements: transformed.iter().map(|s| s.to_string()).collect(),
            expressions: vec!["buf[k]".into()],
            original_mapping: Some("{ [k] -> [2k] }".into()),
            transformed_mapping: Some("{ [k] -> [k] }".into()),
            message: "test".into(),
            failing_domain: Some(Set::parse("{ [k] : k % 2 = 0 and 0 <= k < 8 }").unwrap()),
        }
    }

    #[test]
    fn blame_prefers_statements_common_to_many_failures() {
        let diags = vec![
            diag(DiagnosticKind::MappingMismatch, &["v1", "v3"]),
            diag(DiagnosticKind::MappingMismatch, &["v3", "v4"]),
        ];
        let blame = blame_candidates(&diags);
        assert_eq!(blame[0].0, "v3");
        assert_eq!(blame[0].1, 2);
    }

    #[test]
    fn blame_ignores_non_failing_kinds() {
        let diags = vec![diag(DiagnosticKind::OutputDomainMismatch, &["v1"])];
        assert!(blame_candidates(&diags).is_empty());
    }

    #[test]
    fn display_renders_all_fields() {
        let d = diag(DiagnosticKind::MappingMismatch, &["v3"]);
        let text = d.to_string();
        assert!(text.contains("mapping mismatch"));
        assert!(text.contains("v3"));
        assert!(text.contains("buf[k]"));
        assert!(text.contains("{ [k] -> [2k] }"));
        assert!(text.contains("while checking output:  C"));
        // The structured failing domain renders through the omega printer.
        assert!(text.contains("failing output elements"));
        assert!(text.contains("% 2"));
    }

    #[test]
    fn failing_domain_is_a_structured_set() {
        let d = diag(DiagnosticKind::MappingMismatch, &["v3"]);
        let dom = d.failing_domain.as_ref().unwrap();
        assert!(dom.contains(&[4], &[]));
        assert!(!dom.contains(&[5], &[]));
        // And it can be sampled without any reparsing.
        let (p, _) = dom.sample_point().unwrap();
        assert!(dom.contains(&p, &[]));
    }
}
