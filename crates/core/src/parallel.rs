//! Intra-query parallel checking: one verification run sharded across
//! outputs and independent correspondence sub-proofs.
//!
//! The synchronized traversal of Section 5 establishes correspondences
//! output by output, and below each output it reduces arrays definition by
//! definition and operators operand by operand.  Those sub-obligations are
//! independent up to the tabling state, so a run with
//! [`CheckOptions::jobs`]` > 1` is executed in three phases:
//!
//! 1. **Decompose** (sequential, coordinator thread): the root obligation is
//!    split into [`CheckTask`]s by replaying the traversal's *reduction*
//!    steps without proving anything — per output, then per definition of
//!    the output array (carrying the coinductive recurrence assumption the
//!    sequential reduction would have installed), then through `Access`
//!    compositions and per positional operand pair.  Splitting stops at
//!    algebraic (flatten/match) positions, whose greedy matching is a single
//!    sub-proof.  Tasks keep the depth-first order of the sequential
//!    traversal, so diagnostics merge back in the exact sequential order.
//! 2. **Execute** (scoped worker pool): workers pull tasks off a shared
//!    queue (an atomic cursor — idle workers steal whatever obligation is
//!    next, so one expensive output does not serialise the run).  Each
//!    worker owns a full [`Checker`] — local tabling cache, coinductive
//!    assumptions, stats, diagnostics buffer — and all workers share the
//!    session state through the [`CheckContext`]: the engine's cross-query
//!    equivalence table (rename-invariant keys mean one worker's sub-proof
//!    discharges another worker's identical obligation mid-run) and the
//!    session feasibility cache, re-installed in every worker via
//!    [`arrayeq_omega::with_feasibility_cache`].  Budgets and cancellation
//!    propagate through one [`SharedBudget`]: any worker tripping the work
//!    limit, deadline or cancel token winds the whole pool down promptly.
//! 3. **Merge** (coordinator): per-task verdicts fold into one verdict,
//!    per-task diagnostics concatenate in task order (deterministic —
//!    [`crate::Report::render_stable`] is byte-identical at every `jobs`),
//!    and per-worker [`CheckStats`] merge race-free at join.

use crate::checker::{
    check_output_domains, select_outputs, with_stmt, CheckOptions, Checker, OutputDomains, Pos,
    SharedBudget,
};
use crate::context::{BudgetExhausted, CheckContext};
use crate::diagnostics::{Diagnostic, DiagnosticKind};
use crate::normalize::{self, matching, FlatTerm};
use crate::report::{CheckStats, Report, Verdict};
use crate::Result;
use arrayeq_addg::{Addg, Fingerprints, Node, OperatorKind};
use arrayeq_omega::{current_feasibility_cache, with_feasibility_cache, Relation, Set};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// How many tasks the decomposition aims to produce per worker; a few per
/// worker keep the pool balanced when task costs are skewed without paying
/// decomposition overhead for thousands of micro-tasks.
const TASKS_PER_WORKER: usize = 4;

/// Fault-injection hook for the robustness tests: the worker that picks up
/// the task with this index panics before running it (`usize::MAX` = off).
/// One-shot — the trigger disarms itself when it fires, so a test arms it,
/// runs one verify, and every later run on the process is clean.
static PANIC_ON_TASK: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Arms (or with `None` disarms) the worker panic injection.  Test-only
/// instrumentation for exercising panic isolation; hidden from docs and not
/// part of the supported API.
#[doc(hidden)]
pub fn inject_worker_panic_on_task(task_idx: Option<usize>) {
    PANIC_ON_TASK.store(task_idx.unwrap_or(usize::MAX), Ordering::SeqCst);
}

/// One-shot arming of synthetic solver-overflow injection: the next run
/// (sequential) or worker drain (parallel) that observes the flag records
/// one overflow event on its thread and disarms.
static INJECT_OVERFLOW: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Arms one synthetic solver-overflow event in the next verification.
/// Test-only instrumentation for the degradation plumbing (flag harvest →
/// typed inconclusive verdict); genuine overflow behaviour is covered by
/// the omega-level oracle corpus.
#[doc(hidden)]
pub fn inject_arith_overflow_once() {
    INJECT_OVERFLOW.store(true, Ordering::SeqCst);
}

/// Consumes the overflow injection (if armed) by recording a synthetic
/// event on the calling thread.
pub(crate) fn consume_injected_overflow() {
    if INJECT_OVERFLOW.swap(false, Ordering::SeqCst) {
        arrayeq_omega::inject_arith_overflow();
    }
}

/// Best-effort rendering of a panic payload for the poisoned obligation's
/// diagnostic (`panic!` with a literal or a formatted string covers
/// essentially every real panic; anything else is reported opaquely).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Outcome slot of one task: completed (verdict or pipeline error), or
/// poisoned by a worker panic.
enum TaskSlot {
    Done(Result<(bool, Vec<Diagnostic>)>),
    Panicked(String),
}

/// Reduction depth bound for the decomposition: expansion never recurses
/// deeper than this many reduction steps below a root obligation, so the
/// coordinator's sequential phase stays a small fraction of the run.
const MAX_SPLIT_DEPTH: usize = 6;

/// One decomposed sub-obligation, plus the coinductive assumptions the
/// sequential traversal would have had installed when it reached this
/// position.
struct CheckTask {
    /// Index into the checked-outputs list (diagnostic stamping + ordering).
    output_idx: usize,
    trail_a: Vec<String>,
    trail_b: Vec<String>,
    /// Recurrence assumptions accumulated along the decomposition path, in
    /// installation order: `((array_a, array_b), assumed element pairs)`.
    assumptions: Vec<((String, String), Relation)>,
    /// Reduction steps below the root obligation (bounds the decomposition).
    depth: usize,
    kind: TaskKind,
}

/// What one task proves.
enum TaskKind {
    /// A traversal obligation: exactly the argument tuple of the sequential
    /// `check`.
    Traverse {
        pos_a: Pos,
        map_a: Relation,
        pos_b: Pos,
        map_b: Relation,
    },
    /// One region piece of a flatten/match obligation, emitted by
    /// [`expand_algebraic`]: the coordinator flattened both sides and
    /// restricted the term lists to this piece; the worker runs the match.
    MatchPiece {
        family: OperatorKind,
        live_a: Vec<FlatTerm>,
        live_b: Vec<FlatTerm>,
        piece: Set,
    },
}

impl CheckTask {
    /// A traversal task inheriting bookkeeping from its parent.
    #[allow(clippy::too_many_arguments)]
    fn traverse(
        parent: &CheckTask,
        pos_a: Pos,
        map_a: Relation,
        pos_b: Pos,
        map_b: Relation,
        trail_a: Vec<String>,
        trail_b: Vec<String>,
        assumptions: Vec<((String, String), Relation)>,
    ) -> CheckTask {
        CheckTask {
            output_idx: parent.output_idx,
            trail_a,
            trail_b,
            assumptions,
            depth: parent.depth + 1,
            kind: TaskKind::Traverse {
                pos_a,
                map_a,
                pos_b,
                map_b,
            },
        }
    }
}

/// The parallel counterpart of the sequential `Checker::run`, dispatched by
/// [`crate::verify_addgs_with`] when the effective job count exceeds one.
pub(crate) fn verify_addgs_parallel(
    a: &Addg,
    b: &Addg,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
    fps: Option<(Fingerprints, Fingerprints)>,
) -> Result<Report> {
    let started = Instant::now();
    // Clear any overflow residue an earlier run left on this thread, so the
    // harvest after the merge attributes events to this run only.
    let _ = arrayeq_omega::take_arith_overflow();
    let overflow_base = arrayeq_omega::arith_overflow_events();
    let subsumed_base = arrayeq_omega::conjuncts_subsumed_events();
    let fallback_base = arrayeq_omega::bigint_fallback_events();
    let jobs = opts.effective_jobs();
    let outputs = select_outputs(a, b, opts)?;

    // Phase 1: decompose.  Per output, either a domain-mismatch diagnostic
    // (no traversal to run) or a root task, then split the root tasks until
    // the pool has enough independent obligations.
    // The run-wide budget exists from the very first phase: the algebraic
    // expansion's flattening is real Omega work and flushes into the same
    // counter the workers use, so `max_work` bounds the whole run.
    let budget = SharedBudget::default();
    let mut prologue: Vec<Option<Diagnostic>> = Vec::with_capacity(outputs.len());
    let mut tasks: Vec<CheckTask> = Vec::new();
    let mut coordinator_stats = CheckStats::default();
    let mut cone = 0u64;
    let mut domain_hashes: Vec<(String, u64)> = Vec::new();
    // First out-of-fragment obligation, if any: the affected output's verdict
    // is withheld (typed inconclusive), mirroring the sequential path.
    let mut fragment_reason: Option<BudgetExhausted> = None;
    for (output_idx, output) in outputs.iter().enumerate() {
        // Dirty-cone focus, mirroring the sequential path: baseline-clean
        // outputs keep their prologue slot (so the merge stays positional)
        // but contribute no domain check and no task.
        if opts.assume_clean.iter().any(|o| o == output) {
            arrayeq_trace::event_with("output_clean", || {
                vec![arrayeq_trace::s("output", output.clone())]
            });
            prologue.push(None);
            continue;
        }
        cone += 1;
        let domains = match check_output_domains(a, b, output) {
            Ok(d) => d,
            Err(e) => {
                if let Some(reason) = crate::checker::unsupported_fragment(&e) {
                    if fragment_reason.is_none() {
                        fragment_reason = Some(reason);
                    }
                    prologue.push(None);
                    continue;
                }
                return Err(e);
            }
        };
        match domains {
            OutputDomains::Mismatch(diag) => {
                let mut diag = *diag;
                diag.output_array = Some(output.clone());
                prologue.push(Some(diag));
            }
            OutputDomains::Match(ea) => {
                let id = Relation::identity_on(&ea);
                domain_hashes.push((output.clone(), id.structural_hash()));
                tasks.push(CheckTask {
                    output_idx,
                    trail_a: Vec::new(),
                    trail_b: Vec::new(),
                    assumptions: Vec::new(),
                    depth: 0,
                    kind: TaskKind::Traverse {
                        pos_a: Pos::Array(output.clone()),
                        map_a: id.clone(),
                        pos_b: Pos::Array(output.clone()),
                        map_b: id,
                    },
                });
                prologue.push(None);
            }
        }
    }
    expand_tasks(
        &mut tasks,
        jobs,
        jobs * TASKS_PER_WORKER,
        a,
        b,
        opts,
        ctx,
        &budget,
        &mut coordinator_stats,
    )?;
    if !opts.assume_clean.is_empty() {
        coordinator_stats.cone_positions = cone;
    }
    coordinator_stats.parallel_tasks = tasks.len() as u64;
    coordinator_stats.algebraic_piece_tasks = tasks
        .iter()
        .filter(|t| matches!(t.kind, TaskKind::MatchPiece { .. }))
        .count() as u64;

    // Phase 2: the worker pool.  Workers steal tasks off the shared cursor;
    // every worker re-installs the caller's session feasibility cache so
    // verdicts computed on one worker are visible to all of them.
    //
    // Every task runs under `catch_unwind`: a panicking task poisons only
    // its own obligation (its slot records the payload; the merge turns it
    // into a typed [`DiagnosticKind::WorkerPanicked`] inconclusive), and the
    // worker *quarantines* its local state by discarding the whole `Checker`
    // — term arena, tabling cache, coinductive assumptions, buffered
    // diagnostics could all be mid-mutation — and continuing on a fresh one.
    // The *shared* tables need no rollback: the session feasibility cache
    // and the engine's equivalence table only ever receive completed
    // verdicts in a single `put`, so an unwound task has published either
    // nothing or a finished entry, never partial state.
    let cache = current_feasibility_cache();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TaskSlot>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let merged_worker_stats: Mutex<CheckStats> = Mutex::new(CheckStats::default());
    let workers = jobs.min(tasks.len()).max(1);
    std::thread::scope(|scope| {
        for w in 0..workers {
            // Shadow the shared state as references so the closure can be
            // `move` (capturing the per-worker id) without moving the data.
            let (tasks, slots, next, budget, merged_worker_stats, cache, fps, outputs) = (
                &tasks,
                &slots,
                &next,
                &budget,
                &merged_worker_stats,
                &cache,
                &fps,
                &outputs,
            );
            scope.spawn(move || {
                // Worker lanes are 1-based; 0 is the coordinator thread.
                arrayeq_trace::set_worker((w + 1) as u32);
                let drain_queue = || {
                    let overflow_base = arrayeq_omega::arith_overflow_events();
                    let _ = arrayeq_omega::take_arith_overflow();
                    let subsumed_base = arrayeq_omega::conjuncts_subsumed_events();
                    let fallback_base = arrayeq_omega::bigint_fallback_events();
                    consume_injected_overflow();
                    let mut worker = Checker::new(a, b, opts, ctx, fps.clone(), Some(budget));
                    let mut stats = CheckStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        if PANIC_ON_TASK
                            .compare_exchange(i, usize::MAX, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(TaskSlot::Panicked("injected worker panic".to_owned()));
                            continue;
                        }
                        let _span = arrayeq_trace::span_with("task", || {
                            vec![
                                arrayeq_trace::s("output", outputs[task.output_idx].clone()),
                                arrayeq_trace::s(
                                    "kind",
                                    match &task.kind {
                                        TaskKind::Traverse { .. } => "traverse",
                                        TaskKind::MatchPiece { .. } => "match_piece",
                                    },
                                ),
                            ]
                        });
                        let outcome = catch_unwind(AssertUnwindSafe(|| match &task.kind {
                            TaskKind::Traverse {
                                pos_a,
                                map_a,
                                pos_b,
                                map_b,
                            } => worker.run_task(
                                pos_a.clone(),
                                map_a.clone(),
                                pos_b.clone(),
                                map_b.clone(),
                                &task.trail_a,
                                &task.trail_b,
                                &task.assumptions,
                            ),
                            TaskKind::MatchPiece {
                                family,
                                live_a,
                                live_b,
                                piece,
                            } => worker.run_match_task(
                                family,
                                live_a,
                                live_b,
                                piece,
                                &task.trail_a,
                                &task.trail_b,
                                &task.assumptions,
                            ),
                        }));
                        let slot = match outcome {
                            Ok(done) => TaskSlot::Done(done),
                            Err(payload) => {
                                // Quarantine: the unwound checker's local
                                // state is untrusted — replace it wholesale
                                // (keeping only its counters, which are
                                // volatile and excluded from stable output).
                                let poisoned = std::mem::replace(
                                    &mut worker,
                                    Checker::new(a, b, opts, ctx, fps.clone(), Some(budget)),
                                );
                                stats.merge(&poisoned.into_stats());
                                TaskSlot::Panicked(panic_message(payload))
                            }
                        };
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(slot);
                    }
                    stats.merge(&worker.into_stats());
                    stats.conjuncts_subsumed +=
                        arrayeq_omega::conjuncts_subsumed_events() - subsumed_base;
                    stats.bigint_fallbacks +=
                        arrayeq_omega::bigint_fallback_events() - fallback_base;
                    if arrayeq_omega::take_arith_overflow() {
                        budget.note_overflow_events(
                            arrayeq_omega::arith_overflow_events() - overflow_base,
                        );
                    }
                    stats
                };
                let stats = match &cache {
                    Some(c) => with_feasibility_cache(c.clone(), drain_queue),
                    None => drain_queue(),
                };
                merged_worker_stats
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .merge(&stats);
            });
        }
    });

    // Phase 3: deterministic merge.  Diagnostics concatenate in unit order
    // (per output: prologue first, then its tasks in decomposition order),
    // which is exactly the sequential traversal's emission order; task
    // verdicts conjoin; the first pipeline error in task order wins.
    let mut stats = coordinator_stats;
    stats.merge(
        &merged_worker_stats
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    );
    // Coordinator-side Omega work (flattening during decomposition) reports
    // overflow through the same thread-local flag the workers harvest, and
    // its DNF-engine events through the same monotonic counters.
    stats.conjuncts_subsumed += arrayeq_omega::conjuncts_subsumed_events() - subsumed_base;
    stats.bigint_fallbacks += arrayeq_omega::bigint_fallback_events() - fallback_base;
    if arrayeq_omega::take_arith_overflow() {
        budget.note_overflow_events(arrayeq_omega::arith_overflow_events() - overflow_base);
    }
    let mut results: Vec<Option<TaskSlot>> = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let mut all_ok = true;
    let mut first_panic: Option<String> = None;
    let mut diagnostics = Vec::new();
    for (output_idx, output) in outputs.iter().enumerate() {
        let skipped_clean = opts.assume_clean.iter().any(|o| o == output);
        let mut output_ok = true;
        if let Some(diag) = prologue[output_idx].take() {
            diagnostics.push(diag);
            all_ok = false;
            output_ok = false;
        }
        for (i, task) in tasks.iter().enumerate() {
            if task.output_idx != output_idx {
                continue;
            }
            let outcome = results[i]
                .take()
                .expect("every task slot is filled by a worker");
            match outcome {
                TaskSlot::Done(done) => {
                    let (ok, mut task_diags) = match done {
                        Ok(v) => v,
                        Err(e) => {
                            if let Some(reason) = crate::checker::unsupported_fragment(&e) {
                                if fragment_reason.is_none() {
                                    fragment_reason = Some(reason);
                                }
                                output_ok = false;
                                continue;
                            }
                            return Err(e);
                        }
                    };
                    for d in &mut task_diags {
                        if d.output_array.is_none() {
                            d.output_array = Some(output.clone());
                        }
                    }
                    diagnostics.extend(task_diags);
                    all_ok &= ok;
                    output_ok &= ok;
                }
                TaskSlot::Panicked(message) => {
                    // The obligation is poisoned, not refuted: it neither
                    // proves nor disproves anything, so the verdict is
                    // withheld while every other task's result stands.
                    diagnostics.push(Diagnostic {
                        kind: DiagnosticKind::WorkerPanicked,
                        output_array: Some(output.clone()),
                        original_statements: task.trail_a.clone(),
                        transformed_statements: task.trail_b.clone(),
                        expressions: Vec::new(),
                        original_mapping: None,
                        transformed_mapping: None,
                        message: format!(
                            "worker task panicked ({message}); this obligation's verdict is \
                             poisoned and the run is inconclusive"
                        ),
                        failing_domain: None,
                    });
                    if first_panic.is_none() {
                        first_panic = Some(message);
                    }
                }
            }
        }
        if !skipped_clean {
            arrayeq_trace::event_with("output_verdict", || {
                vec![
                    arrayeq_trace::s("output", output.clone()),
                    arrayeq_trace::b("ok", output_ok),
                ]
            });
        }
    }
    let overflow_events = budget.overflow_events();
    let verdict = if budget.is_exhausted()
        || first_panic.is_some()
        || overflow_events > 0
        || fragment_reason.is_some()
    {
        Verdict::Inconclusive
    } else if all_ok {
        Verdict::Equivalent
    } else {
        Verdict::NotEquivalent
    };
    stats.check_time_us = started.elapsed().as_micros() as u64;
    let output_fingerprints = crate::checker::output_fingerprints(&outputs, fps.as_ref());
    let budget_exhausted = budget
        .take_reason()
        // Fragment before panic/overflow: the sequential path records the
        // out-of-fragment reason at the moment it occurs, before the
        // end-of-run overflow harvest, so this order keeps `render_stable`
        // identical at every jobs count.
        .or(fragment_reason)
        .or(first_panic.map(|message| BudgetExhausted::WorkerPanicked { message }))
        .or(
            (overflow_events > 0).then_some(BudgetExhausted::ArithOverflow {
                events: overflow_events,
            }),
        );
    Ok(Report {
        verdict,
        diagnostics,
        witnesses: Vec::new(),
        stats,
        outputs_checked: outputs,
        output_fingerprints,
        output_domain_hashes: domain_hashes,
        budget_exhausted,
    })
}

/// Splits tasks until at least `target` of them exist (or nothing safely
/// expandable remains).  The shallowest expandable task is split first, so
/// every output contributes obligations before any one chain is split deep;
/// children are spliced in place of their parent, preserving the sequential
/// traversal's depth-first diagnostic order.
#[allow(clippy::too_many_arguments)]
fn expand_tasks(
    tasks: &mut Vec<CheckTask>,
    jobs: usize,
    target: usize,
    a: &Addg,
    b: &Addg,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
    budget: &SharedBudget,
    stats: &mut CheckStats,
) -> Result<()> {
    'grow: while tasks.len() < target {
        // Algebraic piece-splitting only runs while the pool is *starved*
        // (fewer obligations than workers): it is what un-serialises a run
        // dominated by one flatten/match position, but a piece task starts
        // below the obligation's tabling point, so once every worker has
        // work the obligation stays whole and its sub-proof lands in the
        // local and session tables as usual.
        let split_algebraic = tasks.len() < jobs;
        // Shallowest candidates first, so every output contributes
        // obligations before any single chain is split deep.
        let mut order: Vec<usize> = (0..tasks.len())
            .filter(|&j| tasks[j].depth < MAX_SPLIT_DEPTH)
            .collect();
        order.sort_by_key(|&j| (tasks[j].depth, j));
        for j in order {
            match expand_one(&tasks[j], a, b, opts, ctx, budget, split_algebraic, stats)? {
                Some(children) => {
                    tasks.splice(j..=j, children);
                    continue 'grow;
                }
                // Unsplittable (algebraic root, leaf pair, …): mark so it is
                // never scanned again.
                None => tasks[j].depth = MAX_SPLIT_DEPTH,
            }
        }
        break; // nothing left to split
    }
    Ok(())
}

/// Splits one task a single reduction step, mirroring exactly what the
/// sequential `check` would do at that position — or `None` when the
/// position must be proven whole (leaf comparisons, positions under an
/// already-installed matching assumption, operand-count mismatches that
/// must produce their diagnostic inside a worker).  Algebraic flatten/match
/// positions are no longer opaque: [`expand_algebraic`] flattens them in
/// the coordinator and splits the obligation into one task per region
/// piece.
#[allow(clippy::too_many_arguments)]
fn expand_one(
    task: &CheckTask,
    a: &Addg,
    b: &Addg,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
    budget: &SharedBudget,
    split_algebraic: bool,
    stats: &mut CheckStats,
) -> Result<Option<Vec<CheckTask>>> {
    let TaskKind::Traverse {
        pos_a,
        map_a,
        pos_b,
        map_b,
    } = &task.kind
    else {
        return Ok(None); // per-piece match tasks are terminal
    };
    // Mirror of `check`'s Access resolution: compose through the dependency
    // mapping and continue at the array position.
    if let Pos::Node(n) = pos_a {
        if let Node::Access {
            array,
            mapping,
            statement,
            ..
        } = a.node(*n)
        {
            stats.compositions += 1;
            let new_map = {
                let _span = arrayeq_trace::span("compose");
                let t0 = arrayeq_trace::metrics_timer();
                let m = map_a.compose(mapping)?.simplified(true);
                arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Composition, t0);
                m
            };
            let mut trail = task.trail_a.clone();
            trail.push(statement.clone());
            return Ok(Some(vec![CheckTask::traverse(
                task,
                Pos::Array(array.clone()),
                new_map,
                pos_b.clone(),
                map_b.clone(),
                trail,
                task.trail_b.clone(),
                task.assumptions.clone(),
            )]));
        }
    }
    if let Pos::Node(n) = pos_b {
        if let Node::Access {
            array,
            mapping,
            statement,
            ..
        } = b.node(*n)
        {
            stats.compositions += 1;
            let new_map = {
                let _span = arrayeq_trace::span("compose");
                let t0 = arrayeq_trace::metrics_timer();
                let m = map_b.compose(mapping)?.simplified(true);
                arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Composition, t0);
                m
            };
            let mut trail = task.trail_b.clone();
            trail.push(statement.clone());
            return Ok(Some(vec![CheckTask::traverse(
                task,
                pos_a.clone(),
                map_a.clone(),
                Pos::Array(array.clone()),
                new_map,
                task.trail_a.clone(),
                trail,
                task.assumptions.clone(),
            )]));
        }
    }

    match (pos_a, pos_b) {
        (Pos::Array(va), Pos::Array(vb)) => {
            // Focused-checking correspondences terminate the traversal at
            // this pair; proving them is one leaf comparison.
            if let Some(focus) = &opts.focus {
                if focus
                    .intermediate_pairs
                    .iter()
                    .any(|(x, y)| x == va && y == vb)
                {
                    return Ok(None);
                }
            }
            // Under an assumption for this very pair the sequential check
            // consults the assumed element pairs before reducing; leave that
            // decision to a worker.
            if task
                .assumptions
                .iter()
                .any(|((x, y), _)| x == va && y == vb)
            {
                return Ok(None);
            }
            if !a.is_input(va) {
                // Mirror of `reduce_side_a`, with the recurrence assumption
                // the sequential reduction installs around its children.
                let pairs = map_a.inverse().compose(map_b)?;
                let mut assumptions = task.assumptions.clone();
                assumptions.push(((va.clone(), vb.clone()), pairs));
                return split_side_a(task, a, va, assumptions).map(Some);
            }
            if !b.is_input(vb) {
                return split_side_b(task, b, vb).map(Some);
            }
            Ok(None) // both inputs: a single leaf-mapping comparison
        }
        (Pos::Array(va), Pos::Node(_)) => {
            if a.is_input(va) {
                // Leaf-versus-operator: either the algebraic one-term
                // reading or its diagnostic — one task either way.
                return Ok(None);
            }
            // `reduce_side_a` without an assumption (the recurrence key
            // needs an array position on both sides).
            split_side_a(task, a, va, task.assumptions.clone()).map(Some)
        }
        (Pos::Node(_), Pos::Array(vb)) => {
            if b.is_input(vb) {
                return Ok(None);
            }
            split_side_b(task, b, vb).map(Some)
        }
        (Pos::Node(na), Pos::Node(nb)) => {
            let (
                Node::Operator {
                    kind: ka,
                    operands: oa,
                    statement: sa,
                },
                Node::Operator {
                    kind: kb,
                    operands: ob,
                    statement: sb,
                },
            ) = (a.node(*na), b.node(*nb))
            else {
                // Const pairs and operator/constant chains: trivial tasks
                // (the worker folds or diagnoses them whole).
                return Ok(None);
            };
            // Mirror of `check_nodes`' dispatch: a shared chain family means
            // a flatten/match obligation, which the coordinator can split
            // into per-piece sub-obligations.
            if let Some(family) = normalize::chain_family(ka, kb, &opts.operators, opts.method) {
                if !split_algebraic {
                    // Pool already saturated: the flatten/match obligation
                    // stays whole so its proof is tabled and published.
                    return Ok(None);
                }
                return expand_algebraic(
                    task,
                    family,
                    Pos::Node(*na),
                    map_a.clone(),
                    Pos::Node(*nb),
                    map_b.clone(),
                    with_stmt(&task.trail_a, sa),
                    with_stmt(&task.trail_b, sb),
                    a,
                    b,
                    opts,
                    ctx,
                    budget,
                    stats,
                );
            }
            if ka != kb || oa.len() != ob.len() {
                return Ok(None); // the worker produces the diagnostic
            }
            // Mirror of the positional operand pairing.
            let trail_a = with_stmt(&task.trail_a, sa);
            let trail_b = with_stmt(&task.trail_b, sb);
            let children = oa
                .iter()
                .zip(ob.iter())
                .map(|(x, y)| {
                    CheckTask::traverse(
                        task,
                        Pos::Node(*x),
                        map_a.clone(),
                        Pos::Node(*y),
                        map_b.clone(),
                        trail_a.clone(),
                        trail_b.clone(),
                        task.assumptions.clone(),
                    )
                })
                .collect();
            Ok(Some(children))
        }
    }
}

/// Splits one flatten/match obligation into per-region-piece tasks: the
/// coordinator replays the *flattening* (compositions and restrictions, no
/// proving — the same work the sequential traversal performs before its
/// first match) and restricts the term lists per piece; each piece's match
/// is an independent sub-obligation for the pool, and the coordinator's
/// flatten is reused even for single-region chains.  `None` only when a
/// budget tripped mid-flatten (a worker then re-derives the whole
/// obligation under the shared budget).
#[allow(clippy::too_many_arguments)]
fn expand_algebraic(
    task: &CheckTask,
    family: OperatorKind,
    pos_a: Pos,
    map_a: Relation,
    pos_b: Pos,
    map_b: Relation,
    trail_a: Vec<String>,
    trail_b: Vec<String>,
    a: &Addg,
    b: &Addg,
    opts: &CheckOptions,
    ctx: &CheckContext<'_>,
    budget: &SharedBudget,
    stats: &mut CheckStats,
) -> Result<Option<Vec<CheckTask>>> {
    // The scratch checker accounts against the run-wide budget: its visit
    // counts flush into the same shared counter the workers use, so
    // coordinator-side flattening cannot exceed `max_work` unbounded.
    let mut scratch = Checker::new(a, b, opts, ctx, None, Some(budget));
    scratch.stats.flattenings += 1;
    let full = map_a.domain();
    let mut terms_a = Vec::new();
    let ok_a = scratch.flatten_family(
        true,
        &family,
        pos_a,
        map_a,
        trail_a.clone(),
        1,
        true,
        &mut terms_a,
    )?;
    let mut terms_b = Vec::new();
    let ok_b = scratch.flatten_family(
        false,
        &family,
        pos_b,
        map_b,
        trail_b.clone(),
        1,
        true,
        &mut terms_b,
    )?;
    if !ok_a || !ok_b {
        return Ok(None);
    }
    scratch.stats.terms_flattened += (terms_a.len() + terms_b.len()) as u64;
    let pieces = matching::split_pieces(&full, &terms_a, &terms_b)?;
    // Even a single-region chain becomes a piece task: the coordinator's
    // flatten is then *reused* by the worker (which runs only the match)
    // instead of re-derived — returning `None` here would double the
    // flatten work of every algebraic obligation the expansion reached.
    stats.merge(&scratch.into_stats());
    let mut children = Vec::with_capacity(pieces.len());
    for piece in pieces {
        let live_a = matching::restrict_terms(&terms_a, &piece)?;
        let live_b = matching::restrict_terms(&terms_b, &piece)?;
        children.push(CheckTask {
            output_idx: task.output_idx,
            trail_a: trail_a.clone(),
            trail_b: trail_b.clone(),
            assumptions: task.assumptions.clone(),
            // Pieces are atomic: the match itself is one greedy, stateful
            // obligation, never re-scanned for expansion.
            depth: MAX_SPLIT_DEPTH,
            kind: TaskKind::MatchPiece {
                family: family.clone(),
                live_a,
                live_b,
                piece,
            },
        });
    }
    Ok(Some(children))
}

/// Mirror of `reduce_side_a`: one child per definition of `va` whose
/// elements the current mapping reaches.
fn split_side_a(
    task: &CheckTask,
    a: &Addg,
    va: &str,
    assumptions: Vec<((String, String), Relation)>,
) -> Result<Vec<CheckTask>> {
    let TaskKind::Traverse {
        pos_b,
        map_a,
        map_b,
        ..
    } = &task.kind
    else {
        unreachable!("split_side_a is only called on traversal tasks");
    };
    let mut children = Vec::new();
    for def in a.definitions(va) {
        let sub_a = map_a.restrict_range(&def.elements)?.simplified(true);
        if sub_a.is_empty() {
            continue;
        }
        let sub_domain = sub_a.domain();
        let sub_b = map_b.restrict_domain(&sub_domain)?.simplified(true);
        let mut trail = task.trail_a.clone();
        trail.push(def.statement.clone());
        children.push(CheckTask::traverse(
            task,
            Pos::Node(def.root),
            sub_a,
            pos_b.clone(),
            sub_b,
            trail,
            task.trail_b.clone(),
            assumptions.clone(),
        ));
    }
    Ok(children)
}

/// Mirror of `reduce_side_b`: one child per definition of `vb`.
fn split_side_b(task: &CheckTask, b: &Addg, vb: &str) -> Result<Vec<CheckTask>> {
    let TaskKind::Traverse {
        pos_a,
        map_a,
        map_b,
        ..
    } = &task.kind
    else {
        unreachable!("split_side_b is only called on traversal tasks");
    };
    let mut children = Vec::new();
    for def in b.definitions(vb) {
        let sub_b = map_b.restrict_range(&def.elements)?.simplified(true);
        if sub_b.is_empty() {
            continue;
        }
        let sub_domain = sub_b.domain();
        let sub_a = map_a.restrict_domain(&sub_domain)?.simplified(true);
        let mut trail = task.trail_b.clone();
        trail.push(def.statement.clone());
        children.push(CheckTask::traverse(
            task,
            pos_a.clone(),
            sub_a,
            Pos::Node(def.root),
            sub_b,
            task.trail_a.clone(),
            trail,
            task.assumptions.clone(),
        ));
    }
    Ok(children)
}
