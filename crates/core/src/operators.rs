//! Operator property declarations (Section 4 and the "operator property
//! declarations" optional input of Fig. 6).
//!
//! Algebraic transformations exploit associativity and commutativity of
//! operators on fixed-point data (addition, multiplication, user-declared
//! functions such as `min`/`max`).  The checker only normalises at operators
//! that are declared to have these properties; everything else is compared
//! structurally, position by position.

use arrayeq_addg::OperatorKind;
use std::collections::BTreeMap;

/// The algebraic class of one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperatorClass {
    /// The operator is associative: `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`.
    pub associative: bool,
    /// The operator is commutative: `a ⊕ b = b ⊕ a`.
    pub commutative: bool,
}

impl OperatorClass {
    /// Neither associative nor commutative.
    pub const NONE: OperatorClass = OperatorClass {
        associative: false,
        commutative: false,
    };
    /// Both associative and commutative (integer `+` and `*` modulo
    /// overflow, which the paper explicitly ignores).
    pub const AC: OperatorClass = OperatorClass {
        associative: true,
        commutative: true,
    };
}

/// Declared properties for every operator the checker may encounter.
///
/// The defaults match the paper: fixed-point `+` and `*` are associative and
/// commutative (overflow is ignored), `-`, `/`, unary negation and calls are
/// not.  Designers can declare additional properties for their own functions
/// (e.g. `min`, `max`) with [`OperatorProperties::declare_call`].
#[derive(Debug, Clone)]
pub struct OperatorProperties {
    add: OperatorClass,
    mul: OperatorClass,
    calls: BTreeMap<String, OperatorClass>,
}

impl Default for OperatorProperties {
    fn default() -> Self {
        OperatorProperties {
            add: OperatorClass::AC,
            mul: OperatorClass::AC,
            calls: BTreeMap::new(),
        }
    }
}

impl OperatorProperties {
    /// Properties with *no* operator declared associative or commutative —
    /// useful for ablation experiments where algebraic normalisation is
    /// disabled entirely.
    pub fn none() -> Self {
        OperatorProperties {
            add: OperatorClass::NONE,
            mul: OperatorClass::NONE,
            calls: BTreeMap::new(),
        }
    }

    /// Declares the class of a user function (by name).
    pub fn declare_call(mut self, name: impl Into<String>, class: OperatorClass) -> Self {
        self.calls.insert(name.into(), class);
        self
    }

    /// Overrides the class of `+`.
    pub fn with_add(mut self, class: OperatorClass) -> Self {
        self.add = class;
        self
    }

    /// Overrides the class of `*`.
    pub fn with_mul(mut self, class: OperatorClass) -> Self {
        self.mul = class;
        self
    }

    /// The class of an operator kind.
    pub fn class_of(&self, kind: &OperatorKind) -> OperatorClass {
        match kind {
            OperatorKind::Add => self.add,
            OperatorKind::Mul => self.mul,
            OperatorKind::Sub | OperatorKind::Div | OperatorKind::Neg => OperatorClass::NONE,
            OperatorKind::Call(name) => {
                self.calls.get(name).copied().unwrap_or(OperatorClass::NONE)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = OperatorProperties::default();
        assert!(p.class_of(&OperatorKind::Add).associative);
        assert!(p.class_of(&OperatorKind::Add).commutative);
        assert!(p.class_of(&OperatorKind::Mul).associative);
        assert!(!p.class_of(&OperatorKind::Sub).associative);
        assert!(!p.class_of(&OperatorKind::Div).commutative);
        assert_eq!(
            p.class_of(&OperatorKind::Call("absd".into())),
            OperatorClass::NONE
        );
    }

    #[test]
    fn user_declared_functions() {
        let p = OperatorProperties::default().declare_call("max", OperatorClass::AC);
        assert!(p.class_of(&OperatorKind::Call("max".into())).commutative);
        assert!(!p.class_of(&OperatorKind::Call("min".into())).commutative);
    }

    #[test]
    fn none_disables_everything() {
        let p = OperatorProperties::none();
        assert_eq!(p.class_of(&OperatorKind::Add), OperatorClass::NONE);
        assert_eq!(p.class_of(&OperatorKind::Mul), OperatorClass::NONE);
    }
}
