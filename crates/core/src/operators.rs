//! Operator property declarations (Section 4 and the "operator property
//! declarations" optional input of Fig. 6).
//!
//! Algebraic transformations exploit algebraic laws of operators on
//! fixed-point data (addition, multiplication, user-declared functions such
//! as `min`/`max`).  The checker only normalises at operators that are
//! declared to have these properties; everything else is compared
//! structurally, position by position.
//!
//! Beyond the paper's associativity/commutativity pair, the declarations
//! carry the rest of the operator algebra the normalization subsystem
//! ([`crate::normalize`]) exploits:
//!
//! * an **identity element** (`x + 0 = x`, `x * 1 = x`) — identity operands
//!   vanish from flattened chains;
//! * an **annihilator** (`x * 0 = 0`) — an annihilating constant collapses
//!   the whole chain to the constant;
//! * **constant folding** — constant operands of `+`/`*` chains fold into a
//!   single value per region (`2 + x + 3` ≡ `x + 5`);
//! * **inverse folding** — `-` and unary negation fold into the `+` chain
//!   with negated coefficients (`a - b` ≡ `a + (-1)·b`), so subtraction
//!   shuffles normalise away;
//! * one-level **distribution** of `*` over `+` (`a*(b+c)` ≡ `a*b + a*c`).
//!
//! The last two are laws of the fixed `+`/`*` pair, so they are derived from
//! the declared classes (both must be fully associative *and* commutative)
//! rather than declared separately; user calls never fold or distribute.

use arrayeq_addg::OperatorKind;
use std::collections::BTreeMap;

/// The algebraic class of one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperatorClass {
    /// The operator is associative: `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`.
    pub associative: bool,
    /// The operator is commutative: `a ⊕ b = b ⊕ a`.
    pub commutative: bool,
    /// Two-sided identity element: `x ⊕ e = e ⊕ x = x`.
    pub identity: Option<i64>,
    /// Two-sided annihilator (absorbing element): `x ⊕ z = z ⊕ x = z`.
    pub annihilator: Option<i64>,
}

impl OperatorClass {
    /// Neither associative nor commutative, no identity or annihilator.
    pub const NONE: OperatorClass = OperatorClass {
        associative: false,
        commutative: false,
        identity: None,
        annihilator: None,
    };
    /// Both associative and commutative (integer `+` and `*` modulo
    /// overflow, which the paper explicitly ignores); no identity or
    /// annihilator declared.
    pub const AC: OperatorClass = OperatorClass {
        associative: true,
        commutative: true,
        identity: None,
        annihilator: None,
    };
    /// Associative only (order-preserving chains, e.g. declared string-like
    /// concatenation operators).
    pub const ASSOCIATIVE: OperatorClass = OperatorClass {
        associative: true,
        commutative: false,
        identity: None,
        annihilator: None,
    };
    /// Commutative only.
    pub const COMMUTATIVE: OperatorClass = OperatorClass {
        associative: false,
        commutative: true,
        identity: None,
        annihilator: None,
    };

    /// This class with an identity element declared.
    pub const fn with_identity(mut self, e: i64) -> OperatorClass {
        self.identity = Some(e);
        self
    }

    /// This class with an annihilator declared.
    pub const fn with_annihilator(mut self, z: i64) -> OperatorClass {
        self.annihilator = Some(z);
        self
    }

    /// Whether the extended method normalises at an operator of this class
    /// at all (flattening needs associativity or commutativity to have any
    /// effect).
    pub fn is_algebraic(&self) -> bool {
        self.associative || self.commutative
    }

    /// Whether the class allows full reordering of a flattened chain —
    /// required before inverse folding and distribution may rewrite the
    /// chain's term structure.
    pub fn is_ac(&self) -> bool {
        self.associative && self.commutative
    }

    /// Parses a CLI-style class specification: any combination of the
    /// letters `a` (associative) and `c` (commutative), e.g. `ac`, `a`, `c`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending character for anything else.
    pub fn parse_spec(spec: &str) -> Result<OperatorClass, String> {
        let mut class = OperatorClass::NONE;
        if spec.is_empty() {
            return Err("empty operator class (expected `a`, `c` or `ac`)".to_owned());
        }
        for ch in spec.chars() {
            match ch {
                'a' => class.associative = true,
                'c' => class.commutative = true,
                other => {
                    return Err(format!(
                        "unknown operator-class letter `{other}` in `{spec}` \
                         (expected a combination of `a` and `c`)"
                    ))
                }
            }
        }
        Ok(class)
    }
}

/// Declared properties for every operator the checker may encounter.
///
/// The defaults match integer arithmetic with overflow ignored, as the paper
/// does: fixed-point `+` and `*` are associative and commutative with their
/// usual identity elements (`0`, `1`) and `*`'s annihilator `0`; `-`, `/`
/// and unary negation carry no classes of their own (`-` and negation are
/// instead *folded into* the `+` chain by the normalizer), and calls are
/// uninterpreted until declared.  Designers declare properties for their own
/// functions (e.g. `min`, `max`) with [`OperatorProperties::declare_call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProperties {
    add: OperatorClass,
    mul: OperatorClass,
    calls: BTreeMap<String, OperatorClass>,
}

impl Default for OperatorProperties {
    fn default() -> Self {
        OperatorProperties {
            add: OperatorClass::AC.with_identity(0),
            mul: OperatorClass::AC.with_identity(1).with_annihilator(0),
            calls: BTreeMap::new(),
        }
    }
}

impl OperatorProperties {
    /// Properties with *no* operator declared associative or commutative —
    /// useful for ablation experiments where algebraic normalisation is
    /// disabled entirely.
    pub fn none() -> Self {
        OperatorProperties {
            add: OperatorClass::NONE,
            mul: OperatorClass::NONE,
            calls: BTreeMap::new(),
        }
    }

    /// Declares the class of a user function (by name).
    pub fn declare_call(mut self, name: impl Into<String>, class: OperatorClass) -> Self {
        self.calls.insert(name.into(), class);
        self
    }

    /// Declares the class of an operator by its CLI surface syntax
    /// `name=spec` (e.g. `min=ac`, `f=a`, `+=c`): `+` and `*` address the
    /// built-in operators, anything else a call by name.
    ///
    /// # Errors
    ///
    /// Returns a message when the `name=spec` shape or the class letters are
    /// malformed.
    pub fn declare_spec(self, decl: &str) -> Result<Self, String> {
        let (name, spec) = decl
            .split_once('=')
            .ok_or_else(|| format!("malformed operator declaration `{decl}` (expected name=ac)"))?;
        if name.is_empty() {
            return Err(format!("missing operator name in `{decl}`"));
        }
        let class = OperatorClass::parse_spec(spec)?;
        Ok(match name {
            "+" => self.with_add(class),
            "*" => self.with_mul(class),
            _ => self.declare_call(name, class),
        })
    }

    /// Overrides the class of `+`.
    pub fn with_add(mut self, class: OperatorClass) -> Self {
        self.add = class;
        self
    }

    /// Overrides the class of `*`.
    pub fn with_mul(mut self, class: OperatorClass) -> Self {
        self.mul = class;
        self
    }

    /// The class of an operator kind.
    ///
    /// `-`, `/` and unary negation report [`OperatorClass::NONE`]: the
    /// normalizer handles `-`/negation by *inverse folding* into the `+`
    /// chain (see [`crate::normalize`]) rather than through a class of
    /// their own.
    pub fn class_of(&self, kind: &OperatorKind) -> OperatorClass {
        match kind {
            OperatorKind::Add => self.add,
            OperatorKind::Mul => self.mul,
            OperatorKind::Sub | OperatorKind::Div | OperatorKind::Neg => OperatorClass::NONE,
            OperatorKind::Call(name) => {
                self.calls.get(name).copied().unwrap_or(OperatorClass::NONE)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = OperatorProperties::default();
        assert!(p.class_of(&OperatorKind::Add).associative);
        assert!(p.class_of(&OperatorKind::Add).commutative);
        assert!(p.class_of(&OperatorKind::Mul).associative);
        assert!(!p.class_of(&OperatorKind::Sub).associative);
        assert!(!p.class_of(&OperatorKind::Div).commutative);
        assert_eq!(
            p.class_of(&OperatorKind::Call("absd".into())),
            OperatorClass::NONE
        );
    }

    #[test]
    fn defaults_carry_the_integer_algebra() {
        let p = OperatorProperties::default();
        assert_eq!(p.class_of(&OperatorKind::Add).identity, Some(0));
        assert_eq!(p.class_of(&OperatorKind::Add).annihilator, None);
        assert_eq!(p.class_of(&OperatorKind::Mul).identity, Some(1));
        assert_eq!(p.class_of(&OperatorKind::Mul).annihilator, Some(0));
        assert!(p.class_of(&OperatorKind::Add).is_ac());
        assert!(!p.class_of(&OperatorKind::Sub).is_algebraic());
    }

    #[test]
    fn user_declared_functions() {
        let p = OperatorProperties::default().declare_call("max", OperatorClass::AC);
        assert!(p.class_of(&OperatorKind::Call("max".into())).commutative);
        assert!(!p.class_of(&OperatorKind::Call("min".into())).commutative);
    }

    #[test]
    fn none_disables_everything() {
        let p = OperatorProperties::none();
        assert_eq!(p.class_of(&OperatorKind::Add), OperatorClass::NONE);
        assert_eq!(p.class_of(&OperatorKind::Mul), OperatorClass::NONE);
    }

    #[test]
    fn spec_parsing_accepts_the_cli_surface() {
        assert_eq!(OperatorClass::parse_spec("ac").unwrap(), OperatorClass::AC);
        assert_eq!(
            OperatorClass::parse_spec("ca").unwrap(),
            OperatorClass::AC,
            "letter order is free"
        );
        assert_eq!(
            OperatorClass::parse_spec("a").unwrap(),
            OperatorClass::ASSOCIATIVE
        );
        assert_eq!(
            OperatorClass::parse_spec("c").unwrap(),
            OperatorClass::COMMUTATIVE
        );
        assert!(OperatorClass::parse_spec("").is_err());
        assert!(OperatorClass::parse_spec("x").is_err());

        let p = OperatorProperties::default()
            .declare_spec("min=ac")
            .unwrap();
        assert!(p.class_of(&OperatorKind::Call("min".into())).is_ac());
        let p = p.declare_spec("f=a").unwrap();
        let f = p.class_of(&OperatorKind::Call("f".into()));
        assert!(f.associative && !f.commutative);
        assert!(p.clone().declare_spec("min").is_err());
        assert!(p.clone().declare_spec("=ac").is_err());
        assert!(p.clone().declare_spec("g=q").is_err());
        // Built-ins are addressable too (ablations from the CLI).
        let p = p.declare_spec("+=a").unwrap();
        let add = p.class_of(&OperatorKind::Add);
        assert!(add.associative && !add.commutative);
        assert_eq!(add.identity, None, "redeclaring resets the algebra");
    }
}
