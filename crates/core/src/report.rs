//! The result of an equivalence check.

use crate::diagnostics::{blame_candidates, Diagnostic};
use std::fmt;

/// The verdict of the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The sufficient condition holds on every pair of corresponding paths:
    /// the two functions are functionally equivalent.
    Equivalent,
    /// The sufficient condition failed; diagnostics describe where.  (As the
    /// condition is sufficient but not necessary, a sufficiently creative
    /// transformation outside the supported set can also land here.)
    NotEquivalent,
    /// The checker could not decide within its resource limits.
    Inconclusive,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Equivalent => "EQUIVALENT",
            Verdict::NotEquivalent => "NOT EQUIVALENT",
            Verdict::Inconclusive => "INCONCLUSIVE",
        };
        write!(f, "{s}")
    }
}

/// Work counters collected during one check — the quantities the scaling
/// experiments (E5–E9) report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Pairs of corresponding paths whose output-input mappings were compared.
    pub paths_compared: u64,
    /// Relation compositions performed (intermediate-variable reductions).
    pub compositions: u64,
    /// Relation equality checks performed.
    pub mapping_equalities: u64,
    /// Number of tabling-cache lookups performed (key constructions).
    pub table_lookups: u64,
    /// Number of sub-problems answered from the tabling cache.
    pub table_hits: u64,
    /// Number of sub-problems inserted into the tabling cache.  Entries are
    /// only ever inserted on a miss, so this is also the final table size.
    pub table_entries: u64,
    /// Structural-hash collisions detected by the debug-build cross-check
    /// (two relations with the same hash but different canonical keys).
    /// Always 0 in release builds, where the cross-check is compiled out.
    pub hash_collisions: u64,
    /// Flattening operations performed (extended method only).
    pub flattenings: u64,
    /// Matching operations performed (extended method only).
    pub matchings: u64,
}

impl CheckStats {
    /// Fraction of tabling lookups answered from the cache (0.0 when the
    /// table was never consulted).
    pub fn table_hit_rate(&self) -> f64 {
        if self.table_lookups == 0 {
            0.0
        } else {
            self.table_hits as f64 / self.table_lookups as f64
        }
    }
}

/// The full result of a verification run: verdict, diagnostics and work
/// statistics.
#[derive(Debug, Clone)]
pub struct Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Diagnostics explaining a [`Verdict::NotEquivalent`] (or partial
    /// problems encountered on the way).
    pub diagnostics: Vec<Diagnostic>,
    /// Work counters.
    pub stats: CheckStats,
    /// Name of the checked output arrays.
    pub outputs_checked: Vec<String>,
}

impl Report {
    /// Whether the verdict is [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        self.verdict == Verdict::Equivalent
    }

    /// The blame heuristic of Section 6.1: transformed-program statements
    /// most likely to contain the error, ordered by how many failing paths
    /// they appear on.
    pub fn blame(&self) -> Vec<(String, usize)> {
        blame_candidates(&self.diagnostics)
    }

    /// A compact human-readable rendering of the whole report.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} ({} path pairs, {} mapping comparisons, {} table entries, {} table hits, {:.0}% hit rate)\n",
            self.verdict,
            self.stats.paths_compared,
            self.stats.mapping_equalities,
            self.stats.table_entries,
            self.stats.table_hits,
            self.stats.table_hit_rate() * 100.0,
        );
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
        }
        let blame = self.blame();
        if !blame.is_empty() {
            out.push_str("most likely error locations (transformed program): ");
            let rendered: Vec<String> = blame
                .iter()
                .take(3)
                .map(|(s, n)| format!("{s} ({n} failing paths)"))
                .collect();
            out.push_str(&rendered.join(", "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_contains_verdict_and_stats() {
        let r = Report {
            verdict: Verdict::Equivalent,
            diagnostics: Vec::new(),
            stats: CheckStats {
                paths_compared: 4,
                ..Default::default()
            },
            outputs_checked: vec!["C".into()],
        };
        assert!(r.is_equivalent());
        assert!(r.summary().contains("EQUIVALENT"));
        assert!(r.summary().contains("4 path pairs"));
        assert_eq!(format!("{}", Verdict::NotEquivalent), "NOT EQUIVALENT");
        assert_eq!(format!("{}", Verdict::Inconclusive), "INCONCLUSIVE");
    }
}
