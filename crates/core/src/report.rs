//! The result of an equivalence check.

use crate::context::BudgetExhausted;
use crate::diagnostics::{blame_candidates, Diagnostic};
use std::fmt;

/// The verdict of the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The sufficient condition holds on every pair of corresponding paths:
    /// the two functions are functionally equivalent.
    Equivalent,
    /// The sufficient condition failed; diagnostics describe where.  (As the
    /// condition is sufficient but not necessary, a sufficiently creative
    /// transformation outside the supported set can also land here.)
    NotEquivalent,
    /// The checker could not decide within its resource limits.
    Inconclusive,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Equivalent => "EQUIVALENT",
            Verdict::NotEquivalent => "NOT EQUIVALENT",
            Verdict::Inconclusive => "INCONCLUSIVE",
        };
        write!(f, "{s}")
    }
}

/// Work counters collected during one check — the quantities the scaling
/// experiments (E5–E9) report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Pairs of corresponding paths whose output-input mappings were compared.
    pub paths_compared: u64,
    /// Relation compositions performed (intermediate-variable reductions).
    pub compositions: u64,
    /// Relation equality checks performed.
    pub mapping_equalities: u64,
    /// Number of tabling-cache lookups performed (key constructions).
    pub table_lookups: u64,
    /// Number of sub-problems answered from the tabling cache.
    pub table_hits: u64,
    /// Number of sub-problems inserted into the tabling cache.  Entries are
    /// only ever inserted on a miss, so this is also the final table size.
    pub table_entries: u64,
    /// Structural-hash collisions detected by the debug-build cross-check
    /// (two relations with the same hash but different canonical keys).
    /// Always 0 in release builds, where the cross-check is compiled out.
    pub hash_collisions: u64,
    /// Flattening operations performed (extended method only).
    pub flattenings: u64,
    /// Matching operations performed (extended method only).
    pub matchings: u64,
    /// Flattened terms produced across all flattenings.
    pub terms_flattened: u64,
    /// Term-arena interning operations (one per restricted term entering a
    /// match; see `normalize::TermArena`).
    pub arena_interns: u64,
    /// Interning operations answered by an already-interned identical term
    /// (the arena's dedup hits — across regions, chains and sides).
    pub arena_hits: u64,
    /// Term pairs matched by arena-id equality alone (no recursive
    /// equivalence check, no relation algebra — one integer comparison).
    pub fast_term_matches: u64,
    /// Term pairs answered by the matched-pair memo.
    pub term_memo_hits: u64,
    /// Tasks a parallel run's coordinator decomposed the root obligation
    /// into (0 on the sequential path).
    pub parallel_tasks: u64,
    /// How many of those tasks were per-piece algebraic match obligations
    /// emitted from inside a flatten/match position (0 when every algebraic
    /// obligation ran whole).
    pub algebraic_piece_tasks: u64,
    /// Lookups into the cross-query shared equivalence table (0 outside an
    /// engine session — the one-shot path has no shared table).
    pub shared_table_lookups: u64,
    /// Sub-problems answered by the cross-query shared equivalence table.
    pub shared_table_hits: u64,
    /// Sub-proofs published to the cross-query shared equivalence table.
    pub shared_table_inserts: u64,
    /// Sub-problems discharged by entries the shared table was *seeded* with
    /// from a persistent on-disk proof store (a subset of
    /// [`CheckStats::shared_table_hits`]) — hits on entries established by
    /// this process's own session are counted as plain shared-table hits.
    pub store_hits: u64,
    /// Output obligations inside the dirty cone of an incremental run — the
    /// outputs actually traversed after baseline-clean outputs were skipped
    /// via [`crate::CheckOptions::assume_clean`].  0 when no cone focus was
    /// active (a from-scratch run traverses everything but is not counting
    /// cone membership).
    pub cone_positions: u64,
    /// Sub-problems discharged by the baseline store of proven entries
    /// ([`crate::BaselineProofs`]) before either tabling level was consulted.
    pub baseline_hits: u64,
    /// Conjuncts dropped by the DNF constraint-set engine during this check —
    /// structural-hash duplicates plus conjuncts subsumed by a sibling
    /// disjunct (see `arrayeq_omega::conjuncts_subsumed_events`).
    pub conjuncts_subsumed: u64,
    /// Conjunct feasibility questions that tripped the checked-arithmetic
    /// overflow flag and were re-decided *exactly* by the big-int reference
    /// solver instead of surfacing a degraded verdict (see
    /// `arrayeq_omega::bigint_fallback_events`).
    pub bigint_fallbacks: u64,
    /// Wall-clock time of the equivalence check itself, in microseconds.
    pub check_time_us: u64,
    /// Wall-clock time of witness extraction (sampling + replay + slicing),
    /// in microseconds; 0 when no extraction ran.
    pub witness_time_us: u64,
}

impl CheckStats {
    /// Accumulates another stats block into this one (summing every
    /// counter; the timing fields add up too, so merge per-worker counters
    /// first and stamp wall-clock times on the merged result).
    ///
    /// This is how a parallel run aggregates race-free: every worker owns a
    /// plain `CheckStats` (ordinary field increments, no atomics on the hot
    /// path) and the coordinator merges them after the pool joins.
    pub fn merge(&mut self, other: &CheckStats) {
        self.paths_compared += other.paths_compared;
        self.compositions += other.compositions;
        self.mapping_equalities += other.mapping_equalities;
        self.table_lookups += other.table_lookups;
        self.table_hits += other.table_hits;
        self.table_entries += other.table_entries;
        self.hash_collisions += other.hash_collisions;
        self.flattenings += other.flattenings;
        self.matchings += other.matchings;
        self.terms_flattened += other.terms_flattened;
        self.arena_interns += other.arena_interns;
        self.arena_hits += other.arena_hits;
        self.fast_term_matches += other.fast_term_matches;
        self.term_memo_hits += other.term_memo_hits;
        self.parallel_tasks += other.parallel_tasks;
        self.algebraic_piece_tasks += other.algebraic_piece_tasks;
        self.shared_table_lookups += other.shared_table_lookups;
        self.shared_table_hits += other.shared_table_hits;
        self.shared_table_inserts += other.shared_table_inserts;
        self.store_hits += other.store_hits;
        self.cone_positions += other.cone_positions;
        self.baseline_hits += other.baseline_hits;
        self.conjuncts_subsumed += other.conjuncts_subsumed;
        self.bigint_fallbacks += other.bigint_fallbacks;
        self.check_time_us += other.check_time_us;
        self.witness_time_us += other.witness_time_us;
        debug_assert!(self.table_hits <= self.table_lookups);
        debug_assert!(self.shared_table_hits <= self.shared_table_lookups);
        debug_assert!(self.store_hits <= self.shared_table_hits);
    }

    /// Fraction of tabling lookups answered from the cache (0.0 when the
    /// table was never consulted).
    pub fn table_hit_rate(&self) -> f64 {
        if self.table_lookups == 0 {
            0.0
        } else {
            self.table_hits as f64 / self.table_lookups as f64
        }
    }

    /// Fraction of term-arena interning operations answered by an existing
    /// identical term (0.0 when the arena was never used) — the dedup
    /// measure of the normalization subsystem's hash-consing.
    pub fn arena_hit_rate(&self) -> f64 {
        if self.arena_interns == 0 {
            0.0
        } else {
            self.arena_hits as f64 / self.arena_interns as f64
        }
    }

    /// Fraction of tabling lookups answered from *either* cache level — the
    /// per-run table or the cross-query shared table (0.0 when neither was
    /// consulted).  In an engine session this is the reuse measure: shared
    /// hits short-circuit whole sub-traversals that a one-shot run would
    /// re-derive.
    pub fn combined_hit_rate(&self) -> f64 {
        let lookups = self.table_lookups;
        if lookups == 0 {
            0.0
        } else {
            (self.table_hits + self.shared_table_hits) as f64 / lookups as f64
        }
    }
}

/// A concrete, machine-checked counterexample for a
/// [`Verdict::NotEquivalent`]: an output element at which the two programs
/// were *executed* and produced different values.
///
/// Witnesses are produced by the `arrayeq-witness` crate: it samples points
/// from the structured failing domains of the diagnostics
/// ([`crate::Diagnostic::failing_domain`]), replays both programs through the
/// reference interpreter on deterministic inputs, and records the first point
/// where the values diverge, together with the ADDG slices (statement sets)
/// feeding that point on each side.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The output array at which the divergence was exhibited.
    pub output: String,
    /// The concrete index of the diverging output element (one value per
    /// array dimension).
    pub point: Vec<i64>,
    /// Parameter values under which the point was sampled (empty for the
    /// fully-constant program class).
    pub params: Vec<i64>,
    /// Value computed by the original program at the point (`None` when the
    /// replay could not evaluate it).
    pub original_value: Option<i64>,
    /// Value computed by the transformed program at the point.
    pub transformed_value: Option<i64>,
    /// Whether the replay *confirmed* the divergence: both programs ran and
    /// their values at the point differ.  An unconfirmed witness still
    /// records the sampled point of the failing domain.
    pub confirmed: bool,
    /// How many candidate `(input fill, point)` replays were tried before
    /// this witness was produced.
    pub replays: usize,
    /// Statement labels of the original program feeding the witness point.
    pub original_slice: Vec<String>,
    /// Statement labels of the transformed program feeding the witness point.
    pub transformed_slice: Vec<String>,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idx = self
            .point
            .iter()
            .map(|v| format!("[{v}]"))
            .collect::<String>();
        write!(f, "witness: {}{idx}", self.output)?;
        match (self.original_value, self.transformed_value) {
            (Some(a), Some(b)) if self.confirmed => {
                write!(f, " = {a} (original) vs {b} (transformed)")?;
            }
            _ => write!(f, " (divergence not replay-confirmed)")?,
        }
        if !self.original_slice.is_empty() || !self.transformed_slice.is_empty() {
            write!(
                f,
                "  [slice: {} | {}]",
                self.original_slice.join(","),
                self.transformed_slice.join(",")
            )?;
        }
        Ok(())
    }
}

/// The full result of a verification run: verdict, diagnostics and work
/// statistics.
#[derive(Debug, Clone)]
pub struct Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Diagnostics explaining a [`Verdict::NotEquivalent`] (or partial
    /// problems encountered on the way).
    pub diagnostics: Vec<Diagnostic>,
    /// Concrete counterexamples backing the diagnostics, filled in by the
    /// witness engine (`arrayeq-witness`); empty straight out of the checker.
    pub witnesses: Vec<Witness>,
    /// Work counters.
    pub stats: CheckStats,
    /// Name of the checked output arrays.
    pub outputs_checked: Vec<String>,
    /// Content fingerprint of every checked output on each side, as
    /// `(output name, original-side fingerprint, transformed-side
    /// fingerprint)` in [`Report::outputs_checked`] order.  This is what
    /// lets a baseline consumer correlate proven entries with source
    /// positions.  Empty when the run computed no fingerprints (tabling off
    /// with positional keys and no cross-query table); never part of
    /// [`Report::render_stable`] — fingerprints are stable per content but
    /// the *presence* of the member depends on caching options.
    pub output_fingerprints: Vec<(String, u64, u64)>,
    /// Structural hash of the identity relation on each output's defined
    /// elements, as `(output name, hash)` for every re-checked output whose
    /// element domains matched.  Together with an output's entry in
    /// [`Report::output_fingerprints`] this reconstructs the output's root
    /// tabling key (see `output_root_key`) without re-running the Omega
    /// domain computation — which is what lets an exported baseline be
    /// consumed with no per-output Omega work.  Skipped-clean and
    /// domain-mismatched outputs have no entry; never part of
    /// [`Report::render_stable`].
    pub output_domain_hashes: Vec<(String, u64)>,
    /// The typed reason behind a [`Verdict::Inconclusive`]: which budget
    /// (work limit, wall-clock deadline, cancellation) ran out.  Always
    /// `None` for conclusive verdicts.
    pub budget_exhausted: Option<BudgetExhausted>,
}

impl Report {
    /// Whether the verdict is [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        self.verdict == Verdict::Equivalent
    }

    /// The blame heuristic of Section 6.1: transformed-program statements
    /// most likely to contain the error, ordered by how many failing paths
    /// they appear on.
    pub fn blame(&self) -> Vec<(String, usize)> {
        blame_candidates(&self.diagnostics)
    }

    /// The *stable* rendering of the report: verdict, checked outputs,
    /// budget reason, every diagnostic, every witness and the blame ranking
    /// — everything semantic — with the volatile quantities (wall-clock
    /// times, cache hit counters) left out.
    ///
    /// This rendering is byte-identical for one request regardless of
    /// [`crate::CheckOptions::jobs`]: the parallel checker merges per-task
    /// diagnostics in deterministic decomposition order, while its cache and
    /// work counters legitimately vary with scheduling (worker-local tables
    /// see different task interleavings).  [`Report::summary`] is the richer
    /// human rendering that includes those counters.
    pub fn render_stable(&self) -> String {
        let mut out = format!("{}\n", self.verdict);
        out.push_str(&format!("outputs: {}\n", self.outputs_checked.join(", ")));
        if let Some(reason) = &self.budget_exhausted {
            let kind = match reason {
                BudgetExhausted::WorkLimit { .. } => "work limit",
                BudgetExhausted::DeadlineExceeded { .. } => "deadline",
                BudgetExhausted::Cancelled => "cancelled",
                BudgetExhausted::ArithOverflow { .. } => "arithmetic overflow",
                BudgetExhausted::UnsupportedFragment { .. } => "unsupported fragment",
                BudgetExhausted::WorkerPanicked { .. } => "worker panic",
            };
            out.push_str(&format!("inconclusive: {kind}\n"));
        }
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
        }
        for w in &self.witnesses {
            out.push_str(&w.to_string());
            out.push('\n');
        }
        for (stmt, paths) in self.blame() {
            out.push_str(&format!("blame: {stmt} ({paths} failing paths)\n"));
        }
        out
    }

    /// A compact human-readable rendering of the whole report.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} ({} path pairs, {} mapping comparisons, {} table entries, {} table hits, {:.0}% hit rate)\n",
            self.verdict,
            self.stats.paths_compared,
            self.stats.mapping_equalities,
            self.stats.table_entries,
            self.stats.table_hits,
            self.stats.table_hit_rate() * 100.0,
        );
        if self.stats.compositions > 0
            || self.stats.flattenings > 0
            || self.stats.matchings > 0
            || self.stats.terms_flattened > 0
        {
            out.push_str(&format!(
                "traversal: {} compositions, {} flattenings, {} matchings, {} terms flattened\n",
                self.stats.compositions,
                self.stats.flattenings,
                self.stats.matchings,
                self.stats.terms_flattened,
            ));
        }
        if self.stats.parallel_tasks > 0 {
            out.push_str(&format!(
                "parallel: {} tasks decomposed ({} algebraic piece tasks)\n",
                self.stats.parallel_tasks, self.stats.algebraic_piece_tasks,
            ));
        }
        if self.stats.shared_table_lookups > 0 {
            out.push_str(&format!(
                "shared table: {} hits / {} lookups ({:.0}% combined hit rate), {} published\n",
                self.stats.shared_table_hits,
                self.stats.shared_table_lookups,
                self.stats.combined_hit_rate() * 100.0,
                self.stats.shared_table_inserts,
            ));
        }
        if self.stats.store_hits > 0 {
            out.push_str(&format!(
                "proof store: {} sub-proofs discharged from the persistent store\n",
                self.stats.store_hits,
            ));
        }
        if self.stats.baseline_hits > 0 || self.stats.cone_positions > 0 {
            out.push_str(&format!(
                "incremental: {} baseline hits, {} of {} outputs in the dirty cone\n",
                self.stats.baseline_hits,
                self.stats.cone_positions,
                self.outputs_checked.len(),
            ));
        }
        if self.stats.arena_interns > 0 {
            out.push_str(&format!(
                "term arena: {} interns, {} dedup hits ({:.0}%), {} fast matches, {} memo hits\n",
                self.stats.arena_interns,
                self.stats.arena_hits,
                self.stats.arena_hit_rate() * 100.0,
                self.stats.fast_term_matches,
                self.stats.term_memo_hits,
            ));
        }
        if self.stats.conjuncts_subsumed > 0 || self.stats.bigint_fallbacks > 0 {
            out.push_str(&format!(
                "constraint sets: {} conjuncts coalesced away, {} big-int exact fallbacks\n",
                self.stats.conjuncts_subsumed, self.stats.bigint_fallbacks,
            ));
        }
        if self.stats.hash_collisions > 0 {
            out.push_str(&format!(
                "WARNING: {} structural-hash collisions detected in the tabling cache\n",
                self.stats.hash_collisions,
            ));
        }
        if self.stats.check_time_us > 0 || self.stats.witness_time_us > 0 {
            out.push_str(&format!(
                "timing: check {:.3} ms",
                self.stats.check_time_us as f64 / 1e3,
            ));
            if self.stats.witness_time_us > 0 {
                out.push_str(&format!(
                    ", witness extraction {:.3} ms",
                    self.stats.witness_time_us as f64 / 1e3,
                ));
            }
            out.push('\n');
        }
        if let Some(reason) = &self.budget_exhausted {
            out.push_str(&format!("inconclusive: {reason}\n"));
        }
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
        }
        for w in &self.witnesses {
            out.push_str(&w.to_string());
            out.push('\n');
        }
        let blame = self.blame();
        if !blame.is_empty() {
            out.push_str("most likely error locations (transformed program): ");
            let rendered: Vec<String> = blame
                .iter()
                .take(3)
                .map(|(s, n)| format!("{s} ({n} failing paths)"))
                .collect();
            out.push_str(&rendered.join(", "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_contains_verdict_and_stats() {
        let r = Report {
            verdict: Verdict::Equivalent,
            diagnostics: Vec::new(),
            witnesses: Vec::new(),
            stats: CheckStats {
                paths_compared: 4,
                ..Default::default()
            },
            outputs_checked: vec!["C".into()],
            output_fingerprints: Vec::new(),
            output_domain_hashes: Vec::new(),
            budget_exhausted: None,
        };
        assert!(r.is_equivalent());
        assert!(r.summary().contains("EQUIVALENT"));
        assert!(r.summary().contains("4 path pairs"));
        assert_eq!(format!("{}", Verdict::NotEquivalent), "NOT EQUIVALENT");
        assert_eq!(format!("{}", Verdict::Inconclusive), "INCONCLUSIVE");
    }

    #[test]
    fn summary_renders_budget_shared_table_and_collisions() {
        let r = Report {
            verdict: Verdict::Inconclusive,
            diagnostics: Vec::new(),
            witnesses: Vec::new(),
            stats: CheckStats {
                table_lookups: 10,
                table_hits: 2,
                shared_table_lookups: 8,
                shared_table_hits: 4,
                shared_table_inserts: 3,
                hash_collisions: 1,
                check_time_us: 1500,
                witness_time_us: 2500,
                ..Default::default()
            },
            outputs_checked: vec!["C".into()],
            output_fingerprints: Vec::new(),
            output_domain_hashes: Vec::new(),
            budget_exhausted: Some(BudgetExhausted::DeadlineExceeded { elapsed_ms: 9 }),
        };
        let s = r.summary();
        assert!(s.contains("shared table: 4 hits / 8 lookups"));
        assert!(s.contains("60% combined hit rate"));
        assert!(s.contains("1 structural-hash collisions"));
        assert!(s.contains("witness extraction 2.500 ms"));
        assert!(s.contains("inconclusive: wall-clock deadline exceeded after 9 ms"));
        assert!((r.stats.combined_hit_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn summary_renders_traversal_and_parallel_counters() {
        let r = Report {
            verdict: Verdict::Equivalent,
            diagnostics: Vec::new(),
            witnesses: Vec::new(),
            stats: CheckStats {
                compositions: 12,
                flattenings: 3,
                matchings: 5,
                terms_flattened: 40,
                parallel_tasks: 7,
                algebraic_piece_tasks: 2,
                baseline_hits: 4,
                cone_positions: 1,
                arena_interns: 9,
                arena_hits: 3,
                conjuncts_subsumed: 6,
                bigint_fallbacks: 2,
                check_time_us: 800,
                ..Default::default()
            },
            outputs_checked: vec!["C".into(), "D".into()],
            output_fingerprints: Vec::new(),
            output_domain_hashes: Vec::new(),
            budget_exhausted: None,
        };
        let s = r.summary();
        assert!(s.contains(
            "traversal: 12 compositions, 3 flattenings, 5 matchings, 40 terms flattened"
        ));
        assert!(s.contains("parallel: 7 tasks decomposed (2 algebraic piece tasks)"));
        assert!(s.contains("incremental: 4 baseline hits, 1 of 2 outputs in the dirty cone"));
        assert!(s.contains("term arena: 9 interns, 3 dedup hits"));
        assert!(
            s.contains("constraint sets: 6 conjuncts coalesced away, 2 big-int exact fallbacks")
        );
        assert!(s.contains("timing: check 0.800 ms"));
    }

    #[test]
    fn witness_display_shows_the_diverging_values() {
        let w = Witness {
            output: "C".into(),
            point: vec![4],
            params: vec![],
            original_value: Some(17),
            transformed_value: Some(21),
            confirmed: true,
            replays: 2,
            original_slice: vec!["s1".into(), "s3".into()],
            transformed_slice: vec!["v1".into(), "v3".into()],
        };
        let text = w.to_string();
        assert!(text.contains("C[4]"));
        assert!(text.contains("17"));
        assert!(text.contains("21"));
        assert!(text.contains("v3"));
    }
}
