//! End-to-end tests of symbolic-parameter (`#param`) verification: one
//! parametric check must agree with a concrete sweep over every instantiated
//! size, and the `CheckOptions::params` promotion surface must turn a
//! `#define`-sized pair into a parametric proof.

use arrayeq_core::{verify_programs, verify_source, CheckOptions, Verdict};
use arrayeq_lang::corpus::{
    FIG1_A, FIG1_C, KERNEL_SUB_SHUFFLE_A, KERNEL_SUB_SHUFFLE_B, PARAMETRIC_PAIRS,
};
use arrayeq_lang::parser::parse_program;

#[test]
fn parametric_pairs_verify_once_for_all_sizes() {
    for (name, a, b) in PARAMETRIC_PAIRS {
        let r =
            verify_source(a, b, &CheckOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(r.verdict, Verdict::Equivalent, "{name}: {}", r.summary());
    }
}

#[test]
fn parametric_verdicts_agree_with_concrete_sweeps() {
    for (name, a, b) in PARAMETRIC_PAIRS {
        let pa = parse_program(a).unwrap();
        let pb = parse_program(b).unwrap();
        let pname = pa.symbolic_params[0].0.clone();
        let min = pa.symbolic_params[0].1;
        let parametric = verify_programs(&pa, &pb, &CheckOptions::default()).unwrap();
        // Every admissible concrete size must reproduce the parametric
        // verdict.
        for n in min..=64 {
            let ia = pa.with_param_values(&[(pname.clone(), n)]);
            let ib = pb.with_param_values(&[(pname.clone(), n)]);
            let concrete = verify_programs(&ia, &ib, &CheckOptions::default()).unwrap();
            assert_eq!(
                concrete.verdict, parametric.verdict,
                "{name} at {pname} = {n} disagrees with the parametric verdict"
            );
        }
    }
}

#[test]
fn promoted_params_prove_a_size_generic_pair_for_every_size() {
    // The sub-shuffle pair is written with `#define N 64` but nothing in it
    // depends on the concrete size; promoting `N` via the options turns the
    // one concrete proof into an all-sizes proof.
    let opts = CheckOptions::default().with_params(vec![("N".to_string(), 1)]);
    let r = verify_source(KERNEL_SUB_SHUFFLE_A, KERNEL_SUB_SHUFFLE_B, &opts).unwrap();
    assert_eq!(r.verdict, Verdict::Equivalent, "{}", r.summary());
}

#[test]
fn promotion_rejects_pairs_that_only_hold_at_special_sizes() {
    // Fig. 1 (a) vs (c) is only equivalent for *even* N: statement u2's
    // stride-2 loop starts at N, so for odd N the elements u3 reads at even
    // positions >= N are never written.  The concrete N = 1024 proof must
    // NOT generalize — promoting N has to fail the def-use coverage check
    // rather than claim an all-sizes proof.
    let opts = CheckOptions::default().with_params(vec![("N".to_string(), 1)]);
    let err = verify_source(FIG1_A, FIG1_C, &opts).unwrap_err();
    assert!(
        err.to_string().contains("buf"),
        "expected a def-use coverage failure on `buf`, got: {err}"
    );
}

#[test]
fn parametric_runs_are_jobs_invariant() {
    // render_stable must stay byte-identical between sequential and parallel
    // runs on parametric obligations too.
    for (name, a, b) in PARAMETRIC_PAIRS {
        let seq = verify_source(a, b, &CheckOptions::default()).unwrap();
        let par = verify_source(a, b, &CheckOptions::default().with_jobs(4)).unwrap();
        assert_eq!(
            seq.render_stable(),
            par.render_stable(),
            "{name}: sequential and parallel stable renderings differ"
        );
    }
}
