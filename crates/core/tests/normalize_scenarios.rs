//! End-to-end scenarios for the normalization subsystem
//! (`crates/core/src/normalize/`): factored/expanded products, subtraction
//! shuffles, identity and constant folding, annihilators and negation —
//! each verified `Equivalent` under the extended method, rejected by the
//! basic method where algebra is required, and the broken variants
//! rejected outright.

use arrayeq_core::{verify_source, CheckOptions};

fn eq(a: &str, b: &str) -> bool {
    verify_source(a, b, &CheckOptions::default())
        .unwrap()
        .is_equivalent()
}
fn eq_basic(a: &str, b: &str) -> bool {
    verify_source(a, b, &CheckOptions::basic())
        .unwrap()
        .is_equivalent()
}

#[test]
fn pr5_scenarios() {
    let hdr =
        "#define N 32\nvoid f(int A[], int B[], int D[], int C[]) { int k; for (k=0;k<N;k++) ";
    // factored vs expanded
    let fac = format!("{hdr}s1: C[k] = A[k]*(B[k]+D[k]); }}");
    let exp = format!("{hdr}t1: C[k] = A[k]*B[k] + A[k]*D[k]; }}");
    assert!(eq(&fac, &exp), "factored vs expanded");
    assert!(eq(&exp, &fac), "expanded vs factored");
    assert!(!eq_basic(&fac, &exp), "basic must fail");
    // mutant
    let bad = format!("{hdr}t1: C[k] = A[k]*B[k] + D[k]; }}");
    assert!(!eq(&fac, &bad), "broken distribution rejected");
    // subtraction shuffle
    let s1 = format!("{hdr}s1: C[k] = A[k] - B[k] + D[k]; }}");
    let s2 = format!("{hdr}t1: C[k] = A[k] + D[k] - B[k]; }}");
    let s3 = format!("{hdr}t1: C[k] = D[k] - (B[k] - A[k]); }}");
    assert!(eq(&s1, &s2), "sub shuffle");
    assert!(eq(&s1, &s3), "nested sub shuffle");
    assert!(!eq_basic(&s1, &s2));
    let sbad = format!("{hdr}t1: C[k] = B[k] + D[k] - A[k]; }}");
    assert!(!eq(&s1, &sbad), "swapped signs rejected");
    // identity / constant folding
    let i1 = format!("{hdr}s1: C[k] = A[k] + 0 + B[k]*1 + 2 + 3; }}");
    let i2 = format!("{hdr}t1: C[k] = 5 + B[k] + A[k]; }}");
    assert!(eq(&i1, &i2), "identity + const fold");
    let i3 = format!("{hdr}t1: C[k] = 6 + B[k] + A[k]; }}");
    assert!(!eq(&i1, &i3), "wrong constant rejected");
    // x + 0 vs x (leaf)
    let l1 = format!("{hdr}s1: C[k] = A[k] + 0; }}");
    let l2 = format!("{hdr}t1: C[k] = A[k]; }}");
    assert!(eq(&l1, &l2), "identity vs leaf");
    assert!(eq(&l2, &l1), "leaf vs identity");
    // x*1 vs x
    let m1 = format!("{hdr}s1: C[k] = A[k]*1; }}");
    assert!(eq(&m1, &l2), "mul identity vs leaf");
    // annihilator
    let z1 = format!("{hdr}s1: C[k] = A[k]*0; }}");
    let z2 = format!("{hdr}t1: C[k] = 0; }}");
    let z3 = format!("{hdr}t1: C[k] = B[k]*0; }}");
    assert!(eq(&z1, &z2), "annihilator vs const");
    assert!(eq(&z1, &z3), "annihilator both sides");
    let z4 = format!("{hdr}t1: C[k] = 1; }}");
    assert!(!eq(&z1, &z4), "wrong const rejected");
    // negation
    let n1 = format!("{hdr}s1: C[k] = -(-A[k]); }}");
    assert!(eq(&n1, &l2), "double negation");
    let n2 = format!("{hdr}s1: C[k] = -(A[k] - B[k]); }}");
    let n3 = format!("{hdr}t1: C[k] = B[k] - A[k]; }}");
    assert!(eq(&n2, &n3), "negated difference");
    // distribution with subtraction + constants
    let d1 = format!("{hdr}s1: C[k] = 2*(A[k] - B[k]); }}");
    let d2 = format!("{hdr}t1: C[k] = 2*A[k] - 2*B[k]; }}");
    assert!(eq(&d1, &d2), "const distribution over sub");
    // distribution through an intermediate
    let t1 = "#define N 32\nvoid f(int A[], int B[], int D[], int C[]) { int k, t[N]; for (k=0;k<N;k++) s1: t[k] = B[k] + D[k]; for (k=0;k<N;k++) s2: C[k] = A[k]*t[k]; }";
    let t2 = "#define N 32\nvoid f(int A[], int B[], int D[], int C[]) { int k; for (k=0;k<N;k++) u1: C[k] = A[k]*B[k] + A[k]*D[k]; }";
    assert!(eq(t1, t2), "distribution through intermediate");
}

#[test]
fn parallel_decomposition_splits_algebraic_pieces() {
    use arrayeq_lang::corpus::{FIG1_A, FIG1_C};
    // Fig. 1(c)'s buf is defined piecewise, so the flatten/match obligation
    // splits into several region pieces — each a parallel task now.
    let seq = verify_source(FIG1_A, FIG1_C, &CheckOptions::default()).unwrap();
    let par = verify_source(FIG1_A, FIG1_C, &CheckOptions::default().with_jobs(8)).unwrap();
    assert_eq!(seq.verdict, par.verdict);
    assert_eq!(seq.render_stable(), par.render_stable());
    assert_eq!(
        seq.stats.parallel_tasks, 0,
        "sequential runs do not decompose"
    );
    assert!(
        par.stats.algebraic_piece_tasks > 1,
        "flatten/match should contribute >1 task, got {} of {}",
        par.stats.algebraic_piece_tasks,
        par.stats.parallel_tasks
    );
}

#[test]
fn arena_dedup_and_fast_matching_engage() {
    use arrayeq_lang::corpus::{FIG1_A, FIG1_C};
    let r = verify_source(FIG1_A, FIG1_C, &CheckOptions::default()).unwrap();
    assert!(r.is_equivalent());
    assert!(r.stats.arena_interns > 0, "terms were interned");
    assert!(
        r.stats.fast_term_matches > 0,
        "identical terms matched by id: {:?}",
        r.stats
    );
    assert_eq!(r.stats.hash_collisions, 0);
    assert!(r.summary().contains("term arena"));
}

#[test]
fn corpus_algebraic_pairs_verify_and_simulate() {
    use arrayeq_core::Verdict;
    use arrayeq_lang::corpus::ALGEBRAIC_PAIRS;
    use arrayeq_lang::interp::{standard_inputs, Interpreter};
    use arrayeq_lang::parser::parse_program;
    for (name, a, b) in ALGEBRAIC_PAIRS {
        let pa = parse_program(a).unwrap();
        let pb = parse_program(b).unwrap();
        // Ground truth first: the interpreter agrees on every output.
        for seed in [1u64, 2] {
            let inputs = standard_inputs(&pa, seed);
            let (ma, _) = Interpreter::new(&pa).run(&inputs).unwrap();
            let (mb, _) = Interpreter::new(&pb).run(&inputs).unwrap();
            for out in pa.output_arrays() {
                assert_eq!(ma.array(&out), mb.array(&out), "{name} seed {seed}");
            }
        }
        // The extended method proves it; the basic method cannot.
        let ext = arrayeq_core::verify_programs(&pa, &pb, &CheckOptions::default()).unwrap();
        assert!(ext.is_equivalent(), "{name}: {}", ext.summary());
        let basic = arrayeq_core::verify_programs(&pa, &pb, &CheckOptions::basic()).unwrap();
        assert_eq!(basic.verdict, Verdict::NotEquivalent, "{name} under basic");
        // And byte-identical stable reports at every worker count.
        for jobs in [2usize, 8] {
            let par =
                arrayeq_core::verify_programs(&pa, &pb, &CheckOptions::default().with_jobs(jobs))
                    .unwrap();
            assert_eq!(
                ext.render_stable(),
                par.render_stable(),
                "{name} jobs={jobs}"
            );
        }
    }
}
