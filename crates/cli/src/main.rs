//! The `arrayeq` command-line interface.
//!
//! ```text
//! arrayeq verify <original.c> <transformed.c> [--method basic|extended]
//!                [--declare-op name=ac]... [--witnesses] [--json]
//!                [--dot out.dot] [--deadline-ms N] [--max-work N] [--jobs N]
//!                [--baseline prev.json] [--emit-baseline out.json]
//!                [--trace out [--trace-format json|chrome]] [--explain]
//!                [--metrics] [--store dir]
//! arrayeq serve (--socket path | --stdio) [--store dir] [ENGINE OPTIONS]
//! arrayeq client --socket path (verify a.c b.c | ping | stats |
//!                               checkpoint | shutdown)
//! arrayeq corpus --list
//! arrayeq corpus <name>
//! ```
//!
//! `verify` runs the full checker pipeline through a one-shot
//! [`arrayeq_engine::Verifier`] and reports through the exit code — the
//! contract scripts and CI lean on:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | equivalent                                |
//! | 1    | not equivalent                            |
//! | 2    | inconclusive (budget exhausted)           |
//! | 3    | pipeline error (parse / class / def-use…) |
//! | 4    | usage error                               |
//!
//! `--json` prints the full outcome (verdict, typed budget reason, stats,
//! diagnostics, witnesses, session counters) as a single JSON document on
//! stdout; `--dot` writes a Graphviz rendering of the transformed program's
//! ADDG, with the witness's failing slice highlighted when one exists.
//!
//! `--emit-baseline` writes the run's proven sub-proofs as a baseline
//! document; a later `--baseline` run diffs the pair against it and
//! re-checks only the dirty cone ([`Verifier::verify_incremental`]).  A
//! stale or incompatible baseline is rejected with a warning on stderr and
//! the run degrades to a from-scratch check — the verdict and exit code are
//! always identical to a run without `--baseline`.
//!
//! `--store` attaches a persistent on-disk proof store: proven sub-proofs
//! are loaded on startup and flushed after the run, so repeated one-shot
//! invocations over the same corpus get warmer and warmer.  A corrupt,
//! truncated or incompatible store degrades to a cold start with a warning
//! on stderr — the verdict and exit code never change.
//!
//! `serve` runs the long-lived verification daemon
//! ([`arrayeq_serve::Server`]): one shared engine, many concurrent client
//! sessions, line-JSON protocol over a Unix socket (or stdio for
//! supervisors that prefer pipes).  `client` is the matching one-shot
//! protocol client; `client verify` mirrors the one-shot `verify` exit-code
//! contract.
//!
//! `corpus` prints the built-in example programs (the paper's Fig. 1
//! variants, the kernel suite, and the fault-injection mutants as
//! `mutant:<index>` / `mutant-original:<index>`), so shell pipelines can
//! exercise the checker without authoring C files.

use arrayeq_core::Verdict;
use arrayeq_engine::{
    incremental_outcome_to_json, outcome_to_json, BaselineStatus, Verifier, VerifyRequest,
};
use arrayeq_lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D, KERNELS};
use arrayeq_lang::pretty::program_to_string;
use std::time::Duration;

const EXIT_EQUIVALENT: i32 = 0;
const EXIT_NOT_EQUIVALENT: i32 = 1;
const EXIT_INCONCLUSIVE: i32 = 2;
const EXIT_ERROR: i32 = 3;
const EXIT_USAGE: i32 = 4;

const USAGE: &str = "\
arrayeq — functional equivalence checker for array-intensive programs
         (Shashidhar et al., DATE 2005)

USAGE:
    arrayeq verify <original.c> <transformed.c> [OPTIONS]
    arrayeq serve (--socket <path> | --stdio) [OPTIONS]
    arrayeq client --socket <path> <verify <a.c> <b.c> | ping | stats |
                                    checkpoint | shutdown> [OPTIONS]
    arrayeq corpus --list
    arrayeq corpus <name>
    arrayeq help

VERIFY OPTIONS:
    --method basic|extended   checking method (default: extended)
    --declare-op <name=spec>  declare the algebraic class of an operator for
                              the extended method's normalisation; spec is a
                              combination of `a` (associative) and `c`
                              (commutative), e.g. `--declare-op min=ac
                              --declare-op f=a`.  `+` and `*` re-declare the
                              built-ins (ablations).  Repeatable.
    --param <NAME[>=MIN]>     promote the `#define NAME` constant in both
                              programs to a symbolic `#param NAME >= MIN`
                              (default MIN 1) so one check proves the pair
                              equivalent for every admissible size.
                              Verdict-relevant: part of the baseline options
                              fingerprint.  Repeatable.
    --witnesses               extract replay-confirmed counterexamples on
                              a NOT EQUIVALENT verdict
    --json                    print the full outcome as JSON on stdout
    --dot <out.dot>           write the transformed program's ADDG as
                              Graphviz, failing slice highlighted
    --deadline-ms <N>         wall-clock budget; overrun => INCONCLUSIVE
    --max-work <N>            traversal work budget (node-pair visits)
    --jobs <N>                worker threads for this one check (0 = all
                              cores); verdicts are identical at any setting
    --baseline <prev.json>    re-verify incrementally against a baseline
                              from an earlier --emit-baseline run: outputs
                              it already proves are skipped, the rest
                              re-checked with its sub-proofs.  Incompatible
                              baselines are rejected with a warning and the
                              run proceeds from scratch; the verdict is
                              identical either way
    --emit-baseline <out.json> write this run's proven sub-proofs as a
                              baseline for later --baseline runs (valid
                              only under the same method/operator options)
    --trace <out>             record a structured proof trace of the run
                              and write it to <out> (spans, discharge
                              provenance, per-worker lanes)
    --trace-format json|chrome  trace serialization (default: json = JSONL,
                              one event object per line; chrome = a Chrome
                              trace-event profile for chrome://tracing or
                              ui.perfetto.dev)
    --explain                 render the proof tree per output: verdict,
                              time, and which mechanism (local/shared
                              table, baseline, coinduction, arena)
                              discharged each sub-proof.  Written to
                              stderr when combined with --json
    --metrics                 print session latency histograms (feasibility,
                              composition, flatten, match) as JSON on
                              stderr after the outcome
    --store <dir>             attach a persistent proof store: load proven
                              sub-proofs on startup, flush this run's on
                              exit.  Corrupt/incompatible stores degrade to
                              a cold start with a warning; verdicts never
                              change

SERVE OPTIONS:
    --socket <path>           listen on a Unix socket at <path>
    --stdio                   serve exactly one session on stdin/stdout
    --store <dir>             persistent proof store (loaded on start,
                              flushed periodically and on shutdown)
    --flush-every <N>         flush the store every N verifies (default 64,
                              0 = only on checkpoint/shutdown)
    plus the verify engine options: --method, --declare-op, --param,
    --witnesses, --jobs, --deadline-ms, --max-work (per-request budgets in
    the protocol override the daemon defaults)

CLIENT OPTIONS:
    --socket <path>           daemon socket to connect to (required)
    --json                    verify: print the raw response document
    --retry <N>               retry connect/IO failures up to N extra times
                              with exponential backoff + jitter, replaying
                              the identical request (responses are matched
                              by echoed id, so replay is idempotent).
                              Default 0 = fail fast
    --retry-max-ms <N>        cap on any single backoff sleep (default 2000)
    --witnesses, --deadline-ms <N>, --max-work <N>
                              verify: per-request overrides

EXIT CODES:
    0 equivalent, 1 not equivalent, 2 inconclusive,
    3 pipeline error, 4 usage error
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn usage_error(message: &str) -> i32 {
    eprintln!("error: {message}\n\n{USAGE}");
    EXIT_USAGE
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("verify") => run_verify(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("client") => run_client(&args[1..]),
        Some("corpus") => run_corpus(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            EXIT_EQUIVALENT
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

/// Parse a `--param` spec: `NAME` (lower bound defaults to 1) or
/// `NAME>=MIN`.  The name must be a plain identifier so typos like
/// `--param N=16` fail loudly instead of declaring a bogus parameter.
fn parse_param_spec(spec: &str) -> Result<(String, i64), String> {
    let (name, min) = match spec.split_once(">=") {
        Some((name, min)) => {
            let min = min
                .trim()
                .parse::<i64>()
                .map_err(|_| format!("--param `{spec}`: lower bound must be an integer"))?;
            (name.trim(), min)
        }
        None => (spec.trim(), 1),
    };
    let is_ident = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if !is_ident {
        return Err(format!(
            "--param `{spec}`: expected `NAME` or `NAME>=MIN` with an identifier name"
        ));
    }
    Ok((name.to_string(), min))
}

struct VerifyArgs {
    original: String,
    transformed: String,
    method: arrayeq_core::Method,
    declare_ops: Vec<String>,
    params: Vec<(String, i64)>,
    witnesses: bool,
    json: bool,
    dot: Option<String>,
    deadline_ms: Option<u64>,
    max_work: Option<u64>,
    jobs: Option<usize>,
    baseline: Option<String>,
    emit_baseline: Option<String>,
    trace: Option<String>,
    trace_chrome: bool,
    explain: bool,
    metrics: bool,
    store: Option<String>,
}

fn parse_verify_args(args: &[String]) -> Result<VerifyArgs, String> {
    let mut files = Vec::new();
    let mut parsed = VerifyArgs {
        original: String::new(),
        transformed: String::new(),
        method: arrayeq_core::Method::Extended,
        declare_ops: Vec::new(),
        params: Vec::new(),
        witnesses: false,
        json: false,
        dot: None,
        deadline_ms: None,
        max_work: None,
        jobs: None,
        baseline: None,
        emit_baseline: None,
        trace: None,
        trace_chrome: false,
        explain: false,
        metrics: false,
        store: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--method" => {
                parsed.method = match value_of("--method")?.as_str() {
                    "basic" => arrayeq_core::Method::Basic,
                    "extended" => arrayeq_core::Method::Extended,
                    other => return Err(format!("unknown method `{other}`")),
                }
            }
            "--declare-op" => parsed.declare_ops.push(value_of("--declare-op")?),
            "--param" => parsed.params.push(parse_param_spec(&value_of("--param")?)?),
            "--witnesses" => parsed.witnesses = true,
            "--json" => parsed.json = true,
            "--dot" => parsed.dot = Some(value_of("--dot")?),
            "--deadline-ms" => {
                parsed.deadline_ms = Some(
                    value_of("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs an integer".to_string())?,
                )
            }
            "--max-work" => {
                parsed.max_work = Some(
                    value_of("--max-work")?
                        .parse()
                        .map_err(|_| "--max-work needs an integer".to_string())?,
                )
            }
            "--jobs" => {
                parsed.jobs = Some(
                    value_of("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs needs an integer".to_string())?,
                )
            }
            "--baseline" => parsed.baseline = Some(value_of("--baseline")?),
            "--emit-baseline" => parsed.emit_baseline = Some(value_of("--emit-baseline")?),
            "--trace" => parsed.trace = Some(value_of("--trace")?),
            "--trace-format" => {
                parsed.trace_chrome = match value_of("--trace-format")?.as_str() {
                    "json" => false,
                    "chrome" => true,
                    other => return Err(format!("unknown trace format `{other}`")),
                }
            }
            "--explain" => parsed.explain = true,
            "--metrics" => parsed.metrics = true,
            "--store" => parsed.store = Some(value_of("--store")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => files.push(file.to_owned()),
        }
    }
    match files.len() {
        2 => {
            parsed.original = files.remove(0);
            parsed.transformed = files.remove(0);
            Ok(parsed)
        }
        n => Err(format!("verify needs exactly 2 input files, got {n}")),
    }
}

fn run_verify(args: &[String]) -> i32 {
    let parsed = match parse_verify_args(args) {
        Ok(p) => p,
        Err(message) => return usage_error(&message),
    };
    let read = |path: &str| -> Result<String, i32> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            EXIT_ERROR
        })
    };
    let original = match read(&parsed.original) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let transformed = match read(&parsed.transformed) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let mut operators = arrayeq_core::OperatorProperties::default();
    for decl in &parsed.declare_ops {
        operators = match operators.declare_spec(decl) {
            Ok(ops) => ops,
            Err(message) => return usage_error(&message),
        };
    }
    let mut builder = Verifier::builder()
        .method(parsed.method)
        .operators(operators)
        .witnesses(parsed.witnesses);
    if !parsed.params.is_empty() {
        builder = builder.params(parsed.params.clone());
    }
    if let Some(ms) = parsed.deadline_ms {
        builder = builder.deadline(Duration::from_millis(ms));
    }
    if let Some(w) = parsed.max_work {
        builder = builder.max_work(w);
    }
    if let Some(jobs) = parsed.jobs {
        builder = builder.jobs(jobs);
    }
    // --explain needs the event stream even when no --trace file was asked
    // for, so either flag installs a collector.
    let collector = (parsed.trace.is_some() || parsed.explain)
        .then(|| std::sync::Arc::new(arrayeq_trace::Collector::new()));
    if let Some(c) = &collector {
        builder = builder.trace_sink(c.clone());
    }
    if parsed.metrics {
        builder = builder.metrics(true);
    }
    if let Some(dir) = &parsed.store {
        builder = builder.store(dir.clone());
    }
    let verifier = builder.build();
    for warning in verifier.store_warnings() {
        eprintln!("warning: {warning}");
    }

    // A named-but-unreadable baseline is a hard error (the operator asked
    // for incremental mode and pointed at nothing); a readable-but-unusable
    // one is a typed rejection with a from-scratch fallback, handled below.
    let baseline_text = match &parsed.baseline {
        Some(path) => match read(path) {
            Ok(text) => Some(text),
            Err(code) => return code,
        },
        None => None,
    };

    let request = VerifyRequest::source(original, transformed.clone());
    let incremental = match &baseline_text {
        Some(text) => match verifier.verify_incremental(&request, text) {
            Ok(inc) => {
                if let BaselineStatus::Rejected(rejection) = &inc.baseline {
                    eprintln!("warning: {rejection}");
                }
                Some(inc)
            }
            Err(e) => {
                arrayeq_trace::uninstall();
                eprintln!("error: {e}");
                return EXIT_ERROR;
            }
        },
        None => None,
    };
    let outcome = match &incremental {
        Some(inc) => inc.outcome.clone(),
        None => match verifier.verify(&request) {
            Ok(o) => o,
            Err(e) => {
                arrayeq_trace::uninstall();
                eprintln!("error: {e}");
                return EXIT_ERROR;
            }
        },
    };

    // The run is over: stop collecting before serializing, so the trace
    // file is a complete, balanced record of exactly this request.
    if collector.is_some() {
        arrayeq_trace::uninstall();
    }
    if let (Some(path), Some(c)) = (&parsed.trace, &collector) {
        let payload = if parsed.trace_chrome {
            c.to_chrome()
        } else {
            c.to_jsonl()
        };
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write `{path}`: {e}");
            return EXIT_ERROR;
        }
    }

    if let Some(path) = &parsed.emit_baseline {
        if let Err(e) = std::fs::write(path, verifier.export_baseline(&outcome.report)) {
            eprintln!("error: cannot write `{path}`: {e}");
            return EXIT_ERROR;
        }
    }

    // The operator asked for persistence, so failing to write it is a hard
    // error — mirroring --emit-baseline, and unlike the load path, which
    // degrades (a bad existing store must never block a verification).
    if parsed.store.is_some() {
        if let Err(e) = verifier.flush_store() {
            eprintln!("error: cannot flush proof store: {e}");
            return EXIT_ERROR;
        }
    }

    if let Some(dot_path) = &parsed.dot {
        match render_dot(&transformed, &outcome) {
            Ok(dot) => {
                if let Err(e) = std::fs::write(dot_path, dot) {
                    eprintln!("error: cannot write `{dot_path}`: {e}");
                    return EXIT_ERROR;
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                return EXIT_ERROR;
            }
        }
    }

    if parsed.json {
        match &incremental {
            Some(inc) => println!("{}", incremental_outcome_to_json(inc)),
            None => println!("{}", outcome_to_json(&outcome)),
        }
    } else {
        print!("{}", outcome.report.summary());
        println!("wall time: {:.3} ms", outcome.wall_time_us as f64 / 1e3);
    }
    if parsed.explain {
        if let Some(c) = &collector {
            let tree = arrayeq_trace::explain::render(c);
            if parsed.json {
                // Keep stdout machine-readable: the tree goes to stderr.
                eprint!("{tree}");
            } else {
                print!("{tree}");
            }
        }
    }
    if parsed.metrics {
        if let Some(snapshot) = verifier.metrics_snapshot() {
            eprintln!("{}", snapshot.to_json());
        }
    }
    match outcome.report.verdict {
        Verdict::Equivalent => EXIT_EQUIVALENT,
        Verdict::NotEquivalent => EXIT_NOT_EQUIVALENT,
        Verdict::Inconclusive => EXIT_INCONCLUSIVE,
    }
}

/// `arrayeq serve`: the long-lived verification daemon.  Engine options
/// mirror `verify`; clients override budgets per request.
fn run_serve(args: &[String]) -> i32 {
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut store: Option<String> = None;
    let mut config = arrayeq_serve::ServeConfig::default();
    let mut method = arrayeq_core::Method::Extended;
    let mut declare_ops: Vec<String> = Vec::new();
    let mut param_specs: Vec<(String, i64)> = Vec::new();
    let mut witnesses = false;
    let mut jobs: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_work: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse_int = |flag: &str, v: Result<String, String>| -> Result<u64, String> {
            v?.parse().map_err(|_| format!("{flag} needs an integer"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--socket" => socket = Some(value_of("--socket")?),
                "--stdio" => stdio = true,
                "--store" => store = Some(value_of("--store")?),
                "--flush-every" => {
                    config.flush_every =
                        parse_int("--flush-every", value_of("--flush-every"))? as usize
                }
                "--method" => {
                    method = match value_of("--method")?.as_str() {
                        "basic" => arrayeq_core::Method::Basic,
                        "extended" => arrayeq_core::Method::Extended,
                        other => return Err(format!("unknown method `{other}`")),
                    }
                }
                "--declare-op" => declare_ops.push(value_of("--declare-op")?),
                "--param" => param_specs.push(parse_param_spec(&value_of("--param")?)?),
                "--witnesses" => witnesses = true,
                "--jobs" => jobs = Some(parse_int("--jobs", value_of("--jobs"))? as usize),
                "--deadline-ms" => {
                    deadline_ms = Some(parse_int("--deadline-ms", value_of("--deadline-ms"))?)
                }
                "--max-work" => max_work = Some(parse_int("--max-work", value_of("--max-work"))?),
                other => return Err(format!("unknown serve argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    if stdio == socket.is_some() {
        return usage_error("serve needs exactly one of --socket <path> or --stdio");
    }

    let mut operators = arrayeq_core::OperatorProperties::default();
    for decl in &declare_ops {
        operators = match operators.declare_spec(decl) {
            Ok(ops) => ops,
            Err(message) => return usage_error(&message),
        };
    }
    let mut builder = Verifier::builder()
        .method(method)
        .operators(operators)
        .witnesses(witnesses);
    if !param_specs.is_empty() {
        builder = builder.params(param_specs);
    }
    if let Some(ms) = deadline_ms {
        builder = builder.deadline(Duration::from_millis(ms));
    }
    if let Some(w) = max_work {
        builder = builder.max_work(w);
    }
    if let Some(j) = jobs {
        builder = builder.jobs(j);
    }
    if let Some(dir) = &store {
        builder = builder.store(dir.clone());
    }
    let verifier = builder.build();
    for warning in verifier.store_warnings() {
        eprintln!("warning: {warning}");
    }

    let server = arrayeq_serve::Server::new(verifier, config);
    let result = if stdio {
        server.run_stdio()
    } else {
        let path = socket.expect("checked above");
        eprintln!("arrayeq serve: listening on {path}");
        server.run_unix(std::path::Path::new(&path))
    };
    match result {
        Ok(()) => {
            eprintln!("arrayeq serve: shut down cleanly");
            EXIT_EQUIVALENT
        }
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            EXIT_ERROR
        }
    }
}

/// `arrayeq client`: a one-shot protocol client.  `client verify` mirrors
/// the `verify` exit-code contract; control commands print the raw
/// response line.
fn run_client(args: &[String]) -> i32 {
    use arrayeq_serve::client::{
        control_request_line, request_with_retry, response_verdict, verify_request_line,
        RetryPolicy, VerifyParams,
    };

    let mut socket: Option<String> = None;
    let mut json = false;
    let mut retry: u32 = 0;
    let mut retry_max_ms: u64 = 2_000;
    let mut params = VerifyParams::default();
    let mut words: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--socket" => socket = Some(value_of("--socket")?),
                "--json" => json = true,
                "--retry" => {
                    retry = value_of("--retry")?
                        .parse()
                        .map_err(|_| "--retry needs an integer".to_string())?
                }
                "--retry-max-ms" => {
                    retry_max_ms = value_of("--retry-max-ms")?
                        .parse()
                        .map_err(|_| "--retry-max-ms needs an integer".to_string())?
                }
                "--witnesses" => params.witnesses = Some(true),
                "--deadline-ms" => {
                    params.deadline_ms = Some(
                        value_of("--deadline-ms")?
                            .parse()
                            .map_err(|_| "--deadline-ms needs an integer".to_string())?,
                    )
                }
                "--max-work" => {
                    params.max_work = Some(
                        value_of("--max-work")?
                            .parse()
                            .map_err(|_| "--max-work needs an integer".to_string())?,
                    )
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown client flag `{flag}`"))
                }
                word => words.push(word.to_owned()),
            }
            Ok(())
        })();
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let Some(socket) = socket else {
        return usage_error("client needs --socket <path>");
    };
    let policy = RetryPolicy::with_retries(retry, retry_max_ms);
    // All client-side failures — connection refused, broken pipe, malformed
    // greeting, retries exhausted — land on exit code 3 with the typed
    // ClientError's message on stderr.
    let request = |line: &str| -> Result<String, i32> {
        request_with_retry(std::path::Path::new(&socket), line, 1, &policy).map_err(|e| {
            eprintln!("error: `{socket}`: {e}");
            EXIT_ERROR
        })
    };

    match words.first().map(String::as_str) {
        Some("verify") => {
            if words.len() != 3 {
                return usage_error("client verify needs exactly 2 input files");
            }
            let read = |path: &str| -> Result<String, i32> {
                std::fs::read_to_string(path).map_err(|e| {
                    eprintln!("error: cannot read `{path}`: {e}");
                    EXIT_ERROR
                })
            };
            let original = match read(&words[1]) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let transformed = match read(&words[2]) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let line = verify_request_line(1, &original, &transformed, &params);
            let response = match request(&line) {
                Ok(r) => r,
                Err(code) => return code,
            };
            if json {
                println!("{response}");
            }
            match response_verdict(&response) {
                Ok(verdict) => {
                    if !json {
                        println!("verdict: {}", verdict.replace('_', " "));
                    }
                    match verdict.as_str() {
                        "equivalent" => EXIT_EQUIVALENT,
                        "not_equivalent" => EXIT_NOT_EQUIVALENT,
                        _ => EXIT_INCONCLUSIVE,
                    }
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    EXIT_ERROR
                }
            }
        }
        Some(cmd @ ("ping" | "stats" | "checkpoint" | "shutdown")) => {
            match request(&control_request_line(1, cmd)) {
                Ok(response) => {
                    println!("{response}");
                    if response.contains("\"ok\":true") {
                        EXIT_EQUIVALENT
                    } else {
                        EXIT_ERROR
                    }
                }
                Err(code) => code,
            }
        }
        Some(other) => usage_error(&format!("unknown client command `{other}`")),
        None => usage_error("client needs a command (verify/ping/stats/checkpoint/shutdown)"),
    }
}

/// The transformed program's ADDG as Graphviz; when the outcome carries a
/// witness, its failing slice is painted red.
fn render_dot(
    transformed_source: &str,
    outcome: &arrayeq_engine::Outcome,
) -> Result<String, String> {
    let program =
        arrayeq_lang::parser::parse_program(transformed_source).map_err(|e| e.to_string())?;
    let graph = arrayeq_addg::extract(&program).map_err(|e| e.to_string())?;
    if let Some(witness) = outcome.report.witnesses.iter().find(|w| w.confirmed) {
        return arrayeq_witness::witness_dot(&graph, witness).map_err(|e| e.to_string());
    }
    Ok(arrayeq_addg::to_dot(&graph))
}

fn corpus_entries() -> Vec<(String, String)> {
    let mut entries = vec![
        ("fig1a".to_owned(), FIG1_A.to_owned()),
        ("fig1b".to_owned(), FIG1_B.to_owned()),
        ("fig1c".to_owned(), FIG1_C.to_owned()),
        ("fig1d".to_owned(), FIG1_D.to_owned()),
    ];
    for (name, src) in KERNELS {
        entries.push((name.to_owned(), src.to_owned()));
    }
    entries
}

fn run_corpus(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("--list") => {
            for (name, _) in corpus_entries() {
                println!("{name}");
            }
            let corpus = arrayeq_transform::mutate::fault_corpus();
            for (i, case) in corpus.iter().enumerate() {
                println!("mutant:{i}  ({})", case.name);
            }
            EXIT_EQUIVALENT
        }
        Some(name) => {
            if let Some(rest) = name.strip_prefix("mutant:") {
                return print_mutant(rest, false);
            }
            if let Some(rest) = name.strip_prefix("mutant-original:") {
                return print_mutant(rest, true);
            }
            match corpus_entries().into_iter().find(|(n, _)| n == name) {
                Some((_, src)) => {
                    print!("{}", src.trim_start_matches('\n'));
                    EXIT_EQUIVALENT
                }
                None => usage_error(&format!(
                    "unknown corpus program `{name}` (try `arrayeq corpus --list`)"
                )),
            }
        }
        None => usage_error("corpus needs a program name or --list"),
    }
}

/// Prints the mutant (or its unmutated original) at `index` of the
/// fault-injection corpus, pretty-printed back to source.
fn print_mutant(index: &str, original_side: bool) -> i32 {
    let Ok(index) = index.parse::<usize>() else {
        return usage_error("mutant index must be an integer");
    };
    let corpus = arrayeq_transform::mutate::fault_corpus();
    let Some(case) = corpus.get(index) else {
        return usage_error(&format!(
            "mutant index {index} out of range (corpus has {} cases)",
            corpus.len()
        ));
    };
    let program = if original_side {
        &case.original
    } else {
        &case.mutant
    };
    print!("{}", program_to_string(program));
    EXIT_EQUIVALENT
}
