//! Process-level fault injection: a daemon SIGKILLed in the middle of a
//! store flush must leave a store that the next daemon heals on startup —
//! losing at most the tail of the log, never a previously acknowledged
//! entry, and never changing a verdict byte.
//!
//! The kill window is widened deterministically with the
//! `ARRAYEQ_STORE_FSYNC_DELAY_MS` hook: the store sleeps between writing
//! log bytes and fsyncing them, and since the daemon flushes *before*
//! answering (with `--flush-every 1`), the appearance of `log.jsonl` on
//! disk places the daemon inside that window with certainty.

use arrayeq_engine::JsonValue;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn arrayeq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_corpus(dir: &std::path::Path, name: &str) -> PathBuf {
    let out = arrayeq(&["corpus", name]);
    assert!(out.status.success(), "corpus {name} prints");
    let path = dir.join(format!("{name}.c"));
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
    for _ in 0..3000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// Strips the volatile parts of a response line — the per-request `stats`
/// and per-session `session` counter objects (both flat) and the wall-time
/// stamp — leaving only semantic content for byte comparison.
fn mask_volatile(line: &str) -> String {
    let mut out = line.trim().to_owned();
    for key in ["\"stats\":{", "\"session\":{"] {
        while let Some(pos) = out.find(key) {
            let obj_end = out[pos..].find('}').expect("flat object closes") + pos + 1;
            out.replace_range(pos..obj_end, "\"masked\":0");
        }
    }
    while let Some(pos) = out.find("\"wall_time_us\":") {
        let val_start = pos + "\"wall_time_us\":".len();
        let val_end = out[val_start..]
            .find(|c: char| !c.is_ascii_digit())
            .map(|n| val_start + n)
            .unwrap_or(out.len());
        out.replace_range(pos..val_end, "\"masked_time\":0");
    }
    out
}

#[test]
fn sigkill_mid_flush_heals_the_store_and_answers_byte_identically() {
    let dir = std::env::temp_dir().join(format!("arrayeq-sigkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let store = dir.join("store");
    let socket = dir.join("victim.sock");

    // Daemon A: flush after every verify, with a 30s gap between writing
    // log bytes and fsyncing them.
    let mut victim = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--flush-every",
            "1",
        ])
        .env("ARRAYEQ_STORE_FSYNC_DELAY_MS", "30000")
        .spawn()
        .expect("daemon starts");
    wait_for("daemon socket", || socket.exists());

    // The client blocks: its answer is only written after the flush, and
    // the flush is asleep inside the fsync window.
    let client = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args([
            "client",
            "--socket",
            socket.to_str().unwrap(),
            "verify",
            a.to_str().unwrap(),
            c.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client starts");

    // Log bytes on disk mean the flush has started but not synced: the
    // daemon is mid-flush.  Kill it dead.
    let log = store.join("log.jsonl");
    wait_for("mid-flush log bytes", || {
        std::fs::metadata(&log)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
    });
    victim.kill().expect("SIGKILL delivered");
    victim.wait().expect("victim reaped");

    // The unacknowledged client request dies with a typed error, not a hang.
    let out = client.wait_with_output().expect("client finishes");
    assert_eq!(
        out.status.code(),
        Some(3),
        "killed mid-request is a client error: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // SIGKILL alone cannot shred the page cache, so emulate what power loss
    // would have done to the unsynced tail: tear the log mid-line.  The
    // durability contract makes this the *worst case* — everything before
    // the in-flight flush was fsynced.
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() * 2 / 3]).unwrap();

    // Daemon B on the healed store answers the same request...
    let _ = std::fs::remove_file(&socket);
    let mut healed = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ])
        .spawn()
        .expect("healed daemon starts");
    wait_for("healed daemon socket", || socket.exists());
    let warm = arrayeq(&[
        "client",
        "--socket",
        socket.to_str().unwrap(),
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(
        warm.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let down = arrayeq(&["client", "--socket", socket.to_str().unwrap(), "shutdown"]);
    assert_eq!(down.status.code(), Some(0));
    assert_eq!(healed.wait().unwrap().code(), Some(0), "clean shutdown");

    // ...byte-identically to a from-scratch daemon with no store at all:
    // whatever survived the crash is a subset of true facts, never a
    // corrupted one.
    let _ = std::fs::remove_file(&socket);
    let mut fresh = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .spawn()
        .expect("fresh daemon starts");
    wait_for("fresh daemon socket", || socket.exists());
    let baseline = arrayeq(&[
        "client",
        "--socket",
        socket.to_str().unwrap(),
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(baseline.status.code(), Some(0));
    let down = arrayeq(&["client", "--socket", socket.to_str().unwrap(), "shutdown"]);
    assert_eq!(down.status.code(), Some(0));
    assert_eq!(fresh.wait().unwrap().code(), Some(0));

    assert_eq!(
        mask_volatile(&String::from_utf8_lossy(&warm.stdout)),
        mask_volatile(&String::from_utf8_lossy(&baseline.stdout)),
        "crash recovery never changes a verdict byte"
    );
    let doc = JsonValue::parse(String::from_utf8_lossy(&warm.stdout).trim()).unwrap();
    assert_eq!(
        doc.get("result")
            .and_then(|r| r.get("report"))
            .and_then(|r| r.get("verdict"))
            .and_then(JsonValue::as_str),
        Some("equivalent")
    );

    // Daemon B's shutdown flush compacted the torn log away: a one-shot
    // run on the store is warning-free and discharges from it.
    let after = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(after.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&after.stderr);
    assert!(
        !stderr.contains("warning: proof store"),
        "the store was healed, not quarantined: {stderr}"
    );
    let doc = JsonValue::parse(String::from_utf8_lossy(&after.stdout).trim()).unwrap();
    assert!(
        doc.get("report")
            .and_then(|r| r.get("stats"))
            .and_then(|s| s.get("store_hits"))
            .and_then(JsonValue::as_i64)
            .unwrap()
            > 0,
        "the healed store still discharges sub-proofs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
