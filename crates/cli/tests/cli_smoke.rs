//! End-to-end smoke test of the `arrayeq` binary: corpus printing, the
//! verify exit-code contract (0 equivalent / 1 not-equivalent /
//! 2 inconclusive / >2 usage-or-error) and `--json` output that parses.

use arrayeq_engine::JsonValue;
use std::path::PathBuf;
use std::process::{Command, Output};

fn arrayeq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_corpus(dir: &std::path::Path, name: &str) -> PathBuf {
    let out = arrayeq(&["corpus", name]);
    assert!(out.status.success(), "corpus {name} prints");
    let path = dir.join(format!("{}.c", name.replace(':', "_")));
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arrayeq-cli-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn equivalent_pair_exits_zero_with_parsable_json() {
    let dir = temp_dir("eq");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let out = arrayeq(&["verify", a.to_str().unwrap(), c.to_str().unwrap(), "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON");
    let report = doc.get("report").expect("report object");
    assert_eq!(
        report.get("verdict").and_then(JsonValue::as_str),
        Some("equivalent")
    );
    assert_eq!(
        doc.get("session")
            .and_then(|s| s.get("queries"))
            .and_then(JsonValue::as_i64),
        Some(1)
    );
}

#[test]
fn fault_corpus_mutant_exits_one_with_witness_in_json() {
    let dir = temp_dir("neq");
    let original = write_corpus(&dir, "mutant-original:0");
    let mutant = write_corpus(&dir, "mutant:0");
    let out = arrayeq(&[
        "verify",
        original.to_str().unwrap(),
        mutant.to_str().unwrap(),
        "--witnesses",
        "--json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON");
    let report = doc.get("report").expect("report object");
    assert_eq!(
        report.get("verdict").and_then(JsonValue::as_str),
        Some("not_equivalent")
    );
    let witnesses = report
        .get("witnesses")
        .and_then(JsonValue::as_array)
        .expect("witnesses array");
    assert!(
        witnesses
            .iter()
            .any(|w| w.get("confirmed").and_then(JsonValue::as_bool) == Some(true)),
        "a replay-confirmed witness is attached"
    );
}

#[test]
fn tiny_deadline_exits_two_with_typed_reason() {
    let dir = temp_dir("inc");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--json",
        "--max-work",
        "3",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let doc = JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON");
    let reason = doc
        .get("report")
        .and_then(|r| r.get("budget_exhausted"))
        .expect("budget reason present");
    assert_eq!(
        reason.get("reason").and_then(JsonValue::as_str),
        Some("work_limit")
    );
}

#[test]
fn usage_and_pipeline_errors_exit_above_two() {
    // Usage error: unknown command.
    let out = arrayeq(&["frobnicate"]);
    assert!(out.status.code().unwrap_or(0) > 2);
    // Usage error: missing files.
    let out = arrayeq(&["verify", "only-one.c"]);
    assert!(out.status.code().unwrap_or(0) > 2);
    // Pipeline error: unreadable file.
    let out = arrayeq(&["verify", "/nonexistent/a.c", "/nonexistent/b.c"]);
    assert!(out.status.code().unwrap_or(0) > 2);
    // Pipeline error: not a program in the class.
    let dir = temp_dir("err");
    let bad = dir.join("bad.c");
    std::fs::write(&bad, "int main() { return 0; }").unwrap();
    let a = write_corpus(&dir, "fig1a");
    let out = arrayeq(&["verify", a.to_str().unwrap(), bad.to_str().unwrap()]);
    assert!(out.status.code().unwrap_or(0) > 2);
}

#[test]
fn dot_export_writes_a_digraph_with_highlighted_slice() {
    let dir = temp_dir("dot");
    let a = write_corpus(&dir, "fig1a");
    let d = write_corpus(&dir, "fig1d");
    let dot_path = dir.join("slice.dot");
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        d.to_str().unwrap(),
        "--witnesses",
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("color=red"), "failing slice highlighted");
}

#[test]
fn baseline_loop_emits_applies_and_rejects() {
    let dir = temp_dir("baseline");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let baseline = dir.join("baseline.json");

    // First run: emit the baseline.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--emit-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&baseline).unwrap();
    assert!(text.contains("arrayeq-baseline-v1"));

    // Second run: the baseline applies and the pair is fully clean.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let doc = JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON");
    let status = doc.get("baseline").expect("baseline status object");
    assert_eq!(
        status.get("status").and_then(JsonValue::as_str),
        Some("applied")
    );
    assert!(
        !status
            .get("clean_outputs")
            .and_then(JsonValue::as_array)
            .expect("clean outputs")
            .is_empty(),
        "unchanged pair is clean"
    );

    // A baseline produced under different options is rejected with a
    // warning; verdict and exit code are unchanged.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--declare-op",
        "min=ac",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "verdict never changes");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different options"),
        "stderr warns: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON");
    let status = doc.get("baseline").expect("baseline status object");
    assert_eq!(
        status.get("status").and_then(JsonValue::as_str),
        Some("rejected")
    );
    assert_eq!(
        status.get("reason").and_then(JsonValue::as_str),
        Some("options_mismatch")
    );

    // A corrupted baseline is rejected the same way.
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, &text.as_bytes()[..text.len() / 2]).unwrap();
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--baseline",
        corrupt.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let doc = JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON");
    assert_eq!(
        doc.get("baseline")
            .and_then(|s| s.get("reason"))
            .and_then(JsonValue::as_str),
        Some("malformed")
    );

    // A missing baseline file is a hard error, not a silent fallback.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--baseline",
        "/nonexistent/baseline.json",
    ]);
    assert!(out.status.code().unwrap_or(0) > 2);
}

#[test]
fn corpus_list_names_every_entry() {
    let out = arrayeq(&["corpus", "--list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["fig1a", "fig1d", "matvec", "recurrence", "mutant:0"] {
        assert!(text.contains(name), "listing mentions {name}");
    }
    // Unknown corpus names are usage errors.
    let out = arrayeq(&["corpus", "no-such-program"]);
    assert!(out.status.code().unwrap_or(0) > 2);
}

#[test]
fn basic_method_flag_changes_the_verdict_on_fig1c() {
    let dir = temp_dir("method");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    // (a) vs (c) needs the extended method; basic must reject.
    let extended = arrayeq(&["verify", a.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(extended.status.code(), Some(0));
    let basic = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--method",
        "basic",
    ]);
    assert_eq!(basic.status.code(), Some(1));
}

#[test]
fn declare_op_enables_matching_at_user_calls() {
    let dir = temp_dir("declare");
    let a = dir.join("a.c");
    let b = dir.join("b.c");
    std::fs::write(
        &a,
        "#define N 16\nvoid f(int X[], int Y[], int C[]) { int k; for (k=0;k<N;k++) s1: C[k] = min(X[k], Y[2*k]); }\n",
    )
    .unwrap();
    std::fs::write(
        &b,
        "#define N 16\nvoid f(int X[], int Y[], int C[]) { int k; for (k=0;k<N;k++) t1: C[k] = min(Y[2*k], X[k]); }\n",
    )
    .unwrap();
    // Undeclared: `min` is uninterpreted and argument order matters.
    let out = arrayeq(&["verify", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "undeclared min is not commutative"
    );
    // Declared AC: the swapped arguments match.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--declare-op",
        "min=ac",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A malformed declaration is a usage error.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--declare-op",
        "min=zz",
    ]);
    assert_eq!(out.status.code(), Some(4));
    // And the flag is documented.
    let out = arrayeq(&["help"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("--declare-op"));
}

#[test]
fn param_flag_promotes_a_define_to_an_all_sizes_proof() {
    let dir = temp_dir("param");
    let a = dir.join("a.c");
    let b = dir.join("b.c");
    std::fs::write(
        &a,
        "#define N 16\nvoid f(int A[], int B[], int C[]) { int k; int t[64];\n  for (k=0;k<N;k++) a1: t[k] = A[k] + B[2*k];\n  for (k=0;k<N;k++) a2: C[k] = t[k] + A[2*k]; }\n",
    )
    .unwrap();
    std::fs::write(
        &b,
        "#define N 16\nvoid f(int A[], int B[], int C[]) { int k;\n  for (k=0;k<N;k++) b1: C[k] = A[2*k] + (A[k] + B[2*k]); }\n",
    )
    .unwrap();
    // The pair is size-generic: promoting N proves it for every N >= 1.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--param",
        "N",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // An explicit lower bound is accepted too.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--param",
        "N>=4",
    ]);
    assert_eq!(out.status.code(), Some(0));
    // Malformed specs are usage errors.
    for bad in ["N>=x", "2bad", ""] {
        let out = arrayeq(&[
            "verify",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--param",
            bad,
        ]);
        assert_eq!(out.status.code(), Some(4), "`{bad}` must be rejected");
    }
    // And the flag is documented.
    let out = arrayeq(&["help"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("--param"));
}

#[test]
fn trace_flag_writes_parsable_jsonl_and_chrome_profiles() {
    let dir = temp_dir("trace");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let jsonl_path = dir.join("trace.jsonl");
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--trace",
        jsonl_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&jsonl_path).expect("trace file written");
    assert!(!jsonl.trim().is_empty(), "trace is non-empty");
    for line in jsonl.lines() {
        let v = JsonValue::parse(line).expect("every JSONL line parses");
        assert!(v.get("ts").is_some() && v.get("ph").is_some() && v.get("name").is_some());
    }

    let chrome_path = dir.join("trace-chrome.json");
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--trace",
        chrome_path.to_str().unwrap(),
        "--trace-format",
        "chrome",
        "--jobs",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let doc = JsonValue::parse(&std::fs::read_to_string(&chrome_path).unwrap())
        .expect("chrome profile parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // An unknown format is a usage error.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--trace-format",
        "xml",
    ]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn explain_names_discharge_mechanisms_on_an_incremental_run() {
    let dir = temp_dir("explain");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let baseline = dir.join("baseline.json");
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--emit-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));

    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--explain",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("proof tree"), "stdout: {stdout}");
    // Every output of this incremental run owes its verdict to the
    // baseline: the unchanged pair is fully clean.
    assert!(
        stdout.contains("discharged by baseline (clean"),
        "stdout: {stdout}"
    );

    // From scratch, the tree still names how each sub-proof was answered.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--explain",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("discharged via:"), "stdout: {stdout}");

    // With --json, stdout stays a single machine-readable document and the
    // tree moves to stderr.
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--explain",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    JsonValue::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("stdout is pure JSON");
    assert!(String::from_utf8_lossy(&out.stderr).contains("proof tree"));
}

#[test]
fn metrics_flag_prints_histogram_snapshot_on_stderr() {
    let dir = temp_dir("metrics");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let out = arrayeq(&[
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--metrics",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("metrics JSON on stderr");
    let doc = JsonValue::parse(line).expect("metrics snapshot parses");
    let metrics = doc
        .get("metrics")
        .and_then(JsonValue::as_array)
        .expect("metrics array");
    assert_eq!(metrics.len(), 5);
    assert!(metrics
        .iter()
        .any(|m| m.get("count").and_then(JsonValue::as_i64).unwrap_or(0) > 0));
}

#[test]
fn store_loop_discharges_on_the_second_run_and_survives_corruption() {
    let dir = temp_dir("store");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let store = dir.join("proofstore");
    let _ = std::fs::remove_dir_all(&store);
    let args = [
        "verify",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
        "--json",
    ];

    let cold = arrayeq(&args);
    assert_eq!(cold.status.code(), Some(0));
    let doc = JsonValue::parse(std::str::from_utf8(&cold.stdout).unwrap()).unwrap();
    let store_hits = |doc: &JsonValue| {
        doc.get("report")
            .and_then(|r| r.get("stats"))
            .and_then(|s| s.get("store_hits"))
            .and_then(JsonValue::as_i64)
            .unwrap()
    };
    assert_eq!(store_hits(&doc), 0, "first run has nothing to reuse");

    let warm = arrayeq(&args);
    assert_eq!(warm.status.code(), Some(0));
    let warm_doc = JsonValue::parse(std::str::from_utf8(&warm.stdout).unwrap()).unwrap();
    assert!(
        store_hits(&warm_doc) > 0,
        "second run discharges from the store: {}",
        String::from_utf8_lossy(&warm.stdout)
    );
    // Store reuse never changes the verdict-bearing content.
    assert_eq!(
        doc.get("report").unwrap().get("verdict").unwrap().as_str(),
        warm_doc
            .get("report")
            .unwrap()
            .get("verdict")
            .unwrap()
            .as_str(),
    );

    // Corrupt every store file: the run degrades to cold with a typed
    // warning on stderr, same verdict, exit 0.
    for entry in std::fs::read_dir(&store).unwrap() {
        std::fs::write(entry.unwrap().path(), "garbage\n").unwrap();
    }
    let degraded = arrayeq(&args);
    assert_eq!(degraded.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert!(
        stderr.contains("warning: proof store"),
        "typed warning surfaced: {stderr}"
    );
    let degraded_doc = JsonValue::parse(std::str::from_utf8(&degraded.stdout).unwrap()).unwrap();
    assert_eq!(store_hits(&degraded_doc), 0, "corrupt store seeds nothing");
    assert_eq!(
        degraded_doc
            .get("report")
            .unwrap()
            .get("verdict")
            .unwrap()
            .as_str(),
        Some("equivalent")
    );
}

#[test]
fn serve_daemon_round_trip_with_warm_restart() {
    let dir = temp_dir("serve");
    let a = write_corpus(&dir, "fig1a");
    let c = write_corpus(&dir, "fig1c");
    let original = write_corpus(&dir, "mutant-original:0");
    let mutant = write_corpus(&dir, "mutant:0");
    let store = dir.join("servestore");
    let socket = dir.join("daemon.sock");
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_file(&socket);

    let spawn_daemon = || {
        let child = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
            .args([
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--store",
                store.to_str().unwrap(),
            ])
            .spawn()
            .expect("daemon starts");
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        child
    };
    let client = |words: &[&str]| {
        let mut args = vec!["client", "--socket", socket.to_str().unwrap()];
        args.extend_from_slice(words);
        arrayeq(&args)
    };

    let mut daemon = spawn_daemon();
    let ping = client(&["ping"]);
    assert_eq!(ping.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&ping.stdout).contains("pong"));

    let eq = client(&["verify", a.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(eq.status.code(), Some(0), "equivalent over the socket");
    let neq = client(&[
        "verify",
        original.to_str().unwrap(),
        mutant.to_str().unwrap(),
    ]);
    assert_eq!(neq.status.code(), Some(1), "fault mutant rejected");

    let down = client(&["shutdown"]);
    assert_eq!(down.status.code(), Some(0));
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "clean shutdown");
    assert!(store.exists(), "shutdown flushed the store");

    // Restart on the same store: the warm daemon discharges from disk —
    // persistence across processes, not just the in-memory table.
    let mut daemon = spawn_daemon();
    let warm = client(&["verify", a.to_str().unwrap(), c.to_str().unwrap(), "--json"]);
    assert_eq!(warm.status.code(), Some(0));
    let line = String::from_utf8_lossy(&warm.stdout);
    let doc = JsonValue::parse(line.trim()).expect("response parses");
    let store_hits = doc
        .get("result")
        .and_then(|r| r.get("report"))
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("store_hits"))
        .and_then(JsonValue::as_i64)
        .unwrap();
    assert!(store_hits > 0, "warm restart discharges from disk: {line}");

    assert_eq!(client(&["shutdown"]).status.code(), Some(0));
    assert_eq!(daemon.wait().unwrap().code(), Some(0));
}

#[test]
fn client_failures_exit_three_with_typed_errors() {
    let dir = temp_dir("clienterr");

    // Connection refused: nothing listens at the socket path.
    let missing = dir.join("nobody-home.sock");
    let out = arrayeq(&["client", "--socket", missing.to_str().unwrap(), "ping"]);
    assert_eq!(out.status.code(), Some(3), "connection failure is exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot connect after 1 attempt"),
        "typed connect error on stderr: {err}"
    );

    // Malformed greeting: the socket answers, but with something that is
    // not the daemon protocol.  Not retried — retrying cannot fix a wrong
    // server — and still exit 3.
    let imposter = dir.join("imposter.sock");
    let _ = std::fs::remove_file(&imposter);
    let listener = std::os::unix::net::UnixListener::bind(&imposter).unwrap();
    let greeter = std::thread::spawn(move || {
        use std::io::Write;
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .write_all(b"220 smtp.example.com ESMTP ready\n")
            .unwrap();
        // Hold the stream open until the client has reacted.
        std::thread::sleep(std::time::Duration::from_millis(200));
    });
    let out = arrayeq(&[
        "client",
        "--socket",
        imposter.to_str().unwrap(),
        "--retry",
        "3",
        "ping",
    ]);
    greeter.join().unwrap();
    assert_eq!(out.status.code(), Some(3), "malformed greeting is exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("malformed greeting"),
        "typed greeting error on stderr: {err}"
    );

    // Broken pipe: the server accepts and immediately hangs up before
    // greeting.  Exhausts the (bounded) retries, then exit 3.
    let flaky = dir.join("flaky.sock");
    let _ = std::fs::remove_file(&flaky);
    let listener = std::os::unix::net::UnixListener::bind(&flaky).unwrap();
    let slammer = std::thread::spawn(move || {
        for _ in 0..3 {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        }
    });
    let out = arrayeq(&[
        "client",
        "--socket",
        flaky.to_str().unwrap(),
        "--retry",
        "2",
        "--retry-max-ms",
        "50",
        "ping",
    ]);
    slammer.join().unwrap();
    assert_eq!(out.status.code(), Some(3), "broken pipe is exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("after 3 attempt"),
        "the error counts all attempts: {err}"
    );
}

#[test]
fn client_retry_rides_out_a_late_starting_daemon() {
    let dir = temp_dir("clientretry");
    let socket = dir.join("late.sock");
    let _ = std::fs::remove_file(&socket);

    // Start the client first: with --retry it backs off and reconnects
    // until the daemon appears.
    let client = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args([
            "client",
            "--socket",
            socket.to_str().unwrap(),
            "--retry",
            "20",
            "--retry-max-ms",
            "100",
            "ping",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("client starts");

    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_arrayeq"))
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .spawn()
        .expect("daemon starts");

    let out = client.wait_with_output().expect("client finishes");
    assert_eq!(
        out.status.code(),
        Some(0),
        "retrying client succeeds once the daemon is up: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("pong"));

    let down = arrayeq(&["client", "--socket", socket.to_str().unwrap(), "shutdown"]);
    assert_eq!(down.status.code(), Some(0));
    assert_eq!(daemon.wait().unwrap().code(), Some(0));
}
