//! End-to-end mutation self-test — the acceptance gate of the witness
//! engine.
//!
//! For *every* case of the fault-injection corpus
//! ([`arrayeq_transform::mutate::fault_corpus`]): the pair is in-class,
//! def-use-clean and ground-truth inequivalent (established by simulation,
//! independently of the checker).  The test then proves, per case, that
//!
//! 1. the checker answers `NotEquivalent` (no mutant slips through), and
//! 2. the witness engine produces a *replay-confirmed* counterexample: a
//!    concrete output element at which executing the two programs yields
//!    different values, sampled from the checker's own failing domains.

use arrayeq_core::{CheckOptions, Verdict};
use arrayeq_transform::mutate::fault_corpus;
use arrayeq_witness::{verify_with_witnesses, WitnessOptions};

#[test]
fn every_mutant_is_rejected_with_a_replay_confirmed_witness() {
    let corpus = fault_corpus();
    assert!(
        corpus.len() >= 8,
        "fault corpus unexpectedly small: {}",
        corpus.len()
    );
    let wopts = WitnessOptions::default();
    let mut failures = Vec::new();
    for case in &corpus {
        let report = verify_with_witnesses(
            &case.original,
            &case.mutant,
            &CheckOptions::default(),
            &wopts,
        )
        .unwrap_or_else(|e| panic!("{}: pipeline error: {e}", case.name));
        if report.verdict != Verdict::NotEquivalent {
            failures.push(format!(
                "{}: verdict {} (expected NOT EQUIVALENT)",
                case.name, report.verdict
            ));
            continue;
        }
        let Some(w) = report.witnesses.iter().find(|w| w.confirmed) else {
            failures.push(format!(
                "{}: no replay-confirmed witness\n{}",
                case.name,
                report.summary()
            ));
            continue;
        };
        // The confirmed witness is a genuine divergence at a concrete point.
        assert_ne!(
            w.original_value, w.transformed_value,
            "{}: confirmed witness without differing values",
            case.name
        );
        assert!(
            !w.original_slice.is_empty() || !w.transformed_slice.is_empty(),
            "{}: witness has an empty slice on both sides",
            case.name
        );
    }
    assert!(
        failures.is_empty(),
        "{} of {} corpus cases failed:\n{}",
        failures.len(),
        corpus.len(),
        failures.join("\n")
    );
}

#[test]
fn witnesses_point_into_the_failing_domain() {
    // Spot-check on a handful of cases: the witness point must lie inside
    // some diagnostic's failing domain when one exists for its output.
    let corpus = fault_corpus();
    for case in corpus.iter().take(6) {
        let report = verify_with_witnesses(
            &case.original,
            &case.mutant,
            &CheckOptions::default(),
            &WitnessOptions::default(),
        )
        .unwrap();
        for w in report.witnesses.iter().filter(|w| w.confirmed) {
            let domains: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| d.output_array.as_deref() == Some(w.output.as_str()))
                .filter_map(|d| d.failing_domain.as_ref())
                .collect();
            if !domains.is_empty() {
                assert!(
                    domains.iter().any(|dom| dom.contains(&w.point, &[])),
                    "{}: witness point {:?} outside every failing domain",
                    case.name,
                    w.point
                );
            }
        }
    }
}
