//! # arrayeq-witness
//!
//! Concrete counterexamples for `NotEquivalent` verdicts.
//!
//! The checker of `arrayeq-core` proves *where* two programs diverge in
//! terms of integer relations: each failing diagnostic carries a structured
//! failing domain — the set of output elements for which the sufficient
//! condition broke.  This crate turns that symbolic evidence into a
//! machine-checked, executable counterexample (in the spirit of PEQcheck's
//! validation of equivalence claims against concrete executions):
//!
//! 1. **Sample** — concrete points are drawn from the failing domains with
//!    the Omega model extraction ([`arrayeq_omega::Relation::sample_point`]);
//!    several distinct points are enumerated by subtracting each sampled
//!    point and sampling again.
//! 2. **Replay** — both programs are executed through the reference
//!    interpreter on deterministic input fills
//!    ([`arrayeq_lang::interp::standard_inputs`]) and compared at each
//!    sampled output element until a fill/point pair exhibits two different
//!    values.  Value-level coincidences (a wrong expression that happens to
//!    agree at one point, like Fig. 1(d) at `k = 0`) are escaped by moving to
//!    the next point and the next fill.
//! 3. **Slice** — the ADDGs of both programs are sliced to the statements
//!    feeding the witness point ([`arrayeq_addg::slice_for_point`]), giving a
//!    minimal, visually-renderable explanation
//!    ([`arrayeq_addg::to_dot_highlighted`]).
//!
//! The result is attached to the checker's [`Report`] as typed
//! [`Witness`] values.  The end-to-end guarantee — every mutant of the
//! fault-injection corpus yields a replay-confirmed witness — is enforced by
//! this crate's `mutation_selftest` integration test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arrayeq_addg::{extract, slice_for_point, to_dot_highlighted, Addg};
use arrayeq_core::{verify_programs, CheckOptions, Report, Result, Verdict, Witness};
use arrayeq_lang::ast::Program;
use arrayeq_lang::interp::{flat_offset, standard_inputs, Interpreter, Memory};
use arrayeq_omega::Set;
use std::collections::BTreeMap;

/// Tuning knobs for witness extraction.
#[derive(Debug, Clone)]
pub struct WitnessOptions {
    /// Maximum number of distinct points sampled from one failing domain.
    pub max_points: usize,
    /// Seeds of the deterministic input fills replayed per point.
    pub input_fills: Vec<u64>,
    /// Produce at most this many witnesses (at most one per output array).
    pub max_witnesses: usize,
}

impl Default for WitnessOptions {
    fn default() -> Self {
        WitnessOptions {
            max_points: 16,
            input_fills: vec![1, 2, 3],
            max_witnesses: 4,
        }
    }
}

/// Runs the full pipeline — equivalence check, then witness extraction on a
/// `NotEquivalent` verdict — and returns the report with
/// [`Report::witnesses`] filled in.
///
/// # Errors
///
/// Propagates the errors of [`verify_programs`] and of ADDG extraction.
pub fn verify_with_witnesses(
    original: &Program,
    transformed: &Program,
    opts: &CheckOptions,
    wopts: &WitnessOptions,
) -> Result<Report> {
    let mut report = verify_programs(original, transformed, opts)?;
    if report.verdict == Verdict::NotEquivalent {
        let started = std::time::Instant::now();
        report.witnesses = extract_witnesses(original, transformed, &report, wopts)?;
        report.stats.witness_time_us = started.elapsed().as_micros() as u64;
    }
    Ok(report)
}

/// Extracts witnesses for an existing `NotEquivalent` report.
///
/// Candidate domains are taken from the structured failing domains of the
/// diagnostics (grouped by output array); outputs whose diagnostics carry no
/// domain fall back to the full set of elements the original program
/// defines.  For each output, points and input fills are tried until the
/// replay confirms a divergence; if none does within the budget, an
/// *unconfirmed* witness (sampled point, equal values) is still reported.
///
/// # Errors
///
/// Propagates ADDG-extraction and omega-layer errors.
pub fn extract_witnesses(
    original: &Program,
    transformed: &Program,
    report: &Report,
    wopts: &WitnessOptions,
) -> Result<Vec<Witness>> {
    let g1 = extract(original)?;
    let g2 = extract(transformed)?;

    // Candidate failing domains per output, in diagnostic order.
    let mut candidates: Vec<(String, Set)> = Vec::new();
    for d in &report.diagnostics {
        if let (Some(out), Some(dom)) = (&d.output_array, &d.failing_domain) {
            candidates.push((out.clone(), dom.clone()));
        }
    }
    for out in &report.outputs_checked {
        if !candidates.iter().any(|(o, _)| o == out) {
            if let Some(full) = g1.defined_elements(out) {
                candidates.push((out.clone(), full));
            }
        }
    }

    // One interpreter run per (program, fill), shared across all points.
    let mut runs: BTreeMap<u64, Option<(Memory, Memory)>> = BTreeMap::new();
    let mut run_pair = |seed: u64| -> Option<(Memory, Memory)> {
        runs.entry(seed)
            .or_insert_with(|| {
                let inputs = standard_inputs(original, seed);
                let a = Interpreter::new(original).run(&inputs).ok()?.0;
                let b = Interpreter::new(transformed).run(&inputs).ok()?.0;
                Some((a, b))
            })
            .clone()
    };

    let mut witnesses: Vec<Witness> = Vec::new();
    for (output, domain) in candidates {
        // Only confirmed witnesses consume the budget: an output whose
        // replays all came back equal must not starve later outputs.
        if witnesses.iter().filter(|w| w.confirmed).count() >= wopts.max_witnesses {
            break;
        }
        if witnesses.iter().any(|w| w.output == output && w.confirmed) {
            continue; // this output already has a confirmed counterexample
        }
        let points = enumerate_points(&domain, wopts.max_points);
        if points.is_empty() {
            continue;
        }
        let mut replays = 0usize;
        let mut fallback: Option<Witness> = None;
        'search: for &seed in &wopts.input_fills {
            let Some((mem_a, mem_b)) = run_pair(seed) else {
                continue;
            };
            for point in &points {
                let Some(idx) = flat_offset(point) else {
                    continue;
                };
                let va = mem_a.element(&output, idx);
                let vb = mem_b.element(&output, idx);
                replays += 1;
                if va.is_some() && vb.is_some() && va != vb {
                    witnesses.retain(|w| w.output != output); // drop unconfirmed
                    witnesses.push(make_witness(
                        &g1, &g2, &output, point, va, vb, true, replays,
                    )?);
                    break 'search;
                }
                if fallback.is_none() {
                    fallback = Some(make_witness(
                        &g1, &g2, &output, point, va, vb, false, replays,
                    )?);
                }
            }
        }
        if !witnesses.iter().any(|w| w.output == output) {
            if let Some(w) = fallback {
                witnesses.push(w);
            }
        }
    }
    Ok(witnesses)
}

/// Enumerates up to `max` distinct parameter-free points of `domain` via
/// [`Set::sample_points`].  Points that exist only under a non-empty
/// parameter assignment are skipped: the replay executes fully-constant
/// programs and has no symbolic parameters to bind.
fn enumerate_points(domain: &Set, max: usize) -> Vec<Vec<i64>> {
    domain
        .sample_points(max)
        .into_iter()
        .filter(|(_, params)| params.is_empty())
        .map(|(point, _)| point)
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn make_witness(
    g1: &Addg,
    g2: &Addg,
    output: &str,
    point: &[i64],
    va: Option<i64>,
    vb: Option<i64>,
    confirmed: bool,
    replays: usize,
) -> Result<Witness> {
    let s1 = slice_for_point(g1, output, point)?;
    let s2 = slice_for_point(g2, output, point)?;
    Ok(Witness {
        output: output.to_owned(),
        point: point.to_vec(),
        params: Vec::new(),
        original_value: va,
        transformed_value: vb,
        confirmed,
        replays,
        original_slice: s1.statements.into_iter().collect(),
        transformed_slice: s2.statements.into_iter().collect(),
    })
}

/// Renders the transformed program's ADDG with the witness's failing slice
/// highlighted — the "show me the bug" figure.
///
/// # Errors
///
/// Propagates omega-layer errors from the slicing.
pub fn witness_dot(g: &Addg, w: &Witness) -> Result<String> {
    let slice = slice_for_point(g, &w.output, &w.point)?;
    Ok(to_dot_highlighted(g, &slice))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_lang::corpus::{FIG1_A, FIG1_D};
    use arrayeq_lang::parser::parse_program;

    #[test]
    fn fig1d_yields_a_confirmed_witness_despite_the_k0_coincidence() {
        let a = parse_program(FIG1_A).unwrap();
        let d = parse_program(FIG1_D).unwrap();
        let report =
            verify_with_witnesses(&a, &d, &CheckOptions::default(), &WitnessOptions::default())
                .unwrap();
        assert_eq!(report.verdict, Verdict::NotEquivalent);
        let w = report
            .witnesses
            .iter()
            .find(|w| w.confirmed)
            .expect("a confirmed witness");
        assert_eq!(w.output, "C");
        // The paper: version (d) is wrong on even k, but at k = 0 the wrong
        // expression coincides with the right one — the replay must have
        // skipped past it.
        assert_eq!(w.point[0].rem_euclid(2), 0);
        assert_ne!(w.point[0], 0);
        assert_ne!(w.original_value, w.transformed_value);
        // The slice points at the transformed-side statements feeding the
        // point, including the buggy v3.
        assert!(w.transformed_slice.iter().any(|s| s == "v3"));
        // Summary renders the witness.
        assert!(report.summary().contains("witness: C["));
    }

    #[test]
    fn equivalent_pairs_get_no_witnesses() {
        let a = parse_program(FIG1_A).unwrap();
        let report =
            verify_with_witnesses(&a, &a, &CheckOptions::default(), &WitnessOptions::default())
                .unwrap();
        assert!(report.is_equivalent());
        assert!(report.witnesses.is_empty());
    }

    #[test]
    fn witness_dot_highlights_the_failing_slice() {
        let a = parse_program(FIG1_A).unwrap();
        let d = parse_program(FIG1_D).unwrap();
        let report =
            verify_with_witnesses(&a, &d, &CheckOptions::default(), &WitnessOptions::default())
                .unwrap();
        let w = report.witnesses.iter().find(|w| w.confirmed).unwrap();
        let g2 = extract(&d).unwrap();
        let dot = witness_dot(&g2, w).unwrap();
        assert!(dot.contains("color=red"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn point_enumeration_yields_distinct_members() {
        let dom = Set::parse("{ [k] : k % 2 = 0 and 0 <= k < 10 }").unwrap();
        let pts = enumerate_points(&dom, 10);
        assert_eq!(pts.len(), 5);
        let mut seen: Vec<i64> = pts.iter().map(|p| p[0]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5);
        assert!(pts.iter().all(|p| dom.contains(p, &[])));
    }
}
