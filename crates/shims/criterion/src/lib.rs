//! Offline shim for the subset of the `criterion` crate API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! `arrayeq-bench` bench targets depend on this path crate.  It performs a
//! straightforward warmup + timed-iterations measurement and prints
//! mean/min/max per benchmark.  It intentionally keeps the `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `criterion_group!` and
//! `criterion_main!` surface so the bench sources compile unchanged against
//! the real crate when it is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
///
/// Reads the value through a volatile-ish identity that the optimiser cannot
/// remove without `unsafe`; for the coarse timings this shim reports, simply
/// returning the value through an inlining barrier is sufficient.
#[inline(never)]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` / `parameter` pair rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier consisting of the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Per-benchmark timing driver handed to the closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running one warmup pass plus `samples` measured passes.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        black_box(f()); // warmup
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

fn report(label: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().unwrap();
    let max = results.iter().max().unwrap();
    println!(
        "{label:<44} mean {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms   ({} samples)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        results.len()
    );
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured passes per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Ends the group (a no-op in this shim, kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Opens a named group with the default sample size (10).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- {name} --");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            _criterion: &mut self.unit,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function("run", f);
        self
    }
}

/// Collects bench functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_closures() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // one warmup + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("tabling", 5).to_string(), "tabling/5");
    }
}
