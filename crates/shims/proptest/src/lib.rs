//! Offline shim for the subset of the `proptest` crate API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the property
//! tests depend on this path crate.  It supports the `proptest!` macro form
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(24))]
//!     #[test]
//!     fn my_property(a in 0i64..4, b in -3i64..4) { prop_assert!(a + b >= -3); }
//! }
//! ```
//!
//! Inputs are sampled from the given `Range<{i64,u64,usize,i32}>` expressions
//! with a deterministic SplitMix64 stream seeded from the property name, so
//! failures reproduce exactly.  There is no shrinking: a failing case panics
//! with the sampled values printed, which is enough for the small integer
//! domains these tests draw from.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one sampled case: `Err` carries the assertion message.
pub type CaseResult = Result<(), CaseError>;

/// Why a case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Rejected,
    /// `prop_assert!`/`prop_assert_eq!` failed with this message.
    Failed(String),
}

/// Deterministic per-property sample stream.
#[derive(Debug)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a stream seeded from the property name (stable across runs).
    pub fn new(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Types the `a in lo..hi` binder can sample.
pub trait Sample: Copy + std::fmt::Debug {
    /// Uniform sample from a non-empty half-open range.
    fn sample(runner: &mut TestRunner, range: Range<Self>) -> Self;
}

impl Sample for i64 {
    fn sample(runner: &mut TestRunner, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty sample range");
        let width = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(runner.below(width) as i64)
    }
}

impl Sample for u64 {
    fn sample(runner: &mut TestRunner, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty sample range");
        range.start + runner.below(range.end - range.start)
    }
}

impl Sample for usize {
    fn sample(runner: &mut TestRunner, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty sample range");
        range.start + runner.below((range.end - range.start) as u64) as usize
    }
}

impl Sample for i32 {
    fn sample(runner: &mut TestRunner, range: Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty sample range");
        let width = (range.end as i64 - range.start as i64) as u64;
        range.start.wrapping_add(runner.below(width) as i32)
    }
}

/// Samples one value; used by the `proptest!` expansion.
pub fn sample<T: Sample>(runner: &mut TestRunner, range: Range<T>) -> T {
    T::sample(runner, range)
}

/// Declares deterministic property tests; see the crate docs for the
/// supported subset of the real `proptest!` grammar.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one property at a time so
/// the shared config expression can be repeated into every test body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident( $( $arg:ident in $range:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(stringify!($name));
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20).max(1000),
                    "property {}: too many cases rejected by prop_assume!",
                    stringify!($name)
                );
                $(let $arg = $crate::sample(&mut runner, $range);)*
                let outcome: $crate::CaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::CaseError::Rejected) => continue,
                    Err($crate::CaseError::Failed(msg)) => {
                        panic!(
                            "property {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::CaseError::Failed(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseError::Rejected);
        }
    };
}

/// Mirrors `proptest::prelude` for the used subset.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sampling_respects_ranges(a in -3i64..4, b in 0usize..5, c in 1u64..9) {
            prop_assert!((-3..4).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((1..9).contains(&c));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn assume_skips_cases(a in 0i64..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failing_property failed")]
    #[allow(unnameable_test_items)]
    fn failures_panic_with_inputs() {
        proptest! {
            #[test]
            fn failing_property(a in 0i64..10) {
                prop_assert!(a < 0, "a was {}", a);
            }
        }
        failing_property();
    }
}
