//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! `arrayeq-transform` generators depend on this path crate instead.  It
//! provides `StdRng::seed_from_u64` and `Rng::gen_range` over integer ranges,
//! backed by the SplitMix64 generator — deterministic across platforms, which
//! is all the workload generators need (they only require reproducible
//! streams, not cryptographic or statistical guarantees).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Integer types `gen_range` can sample.
pub trait UniformInt: Copy {
    /// Uniform sample from a non-empty half-open range.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

fn sample_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Multiply-shift; the tiny modulo bias is irrelevant for workload seeds.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

impl UniformInt for usize {
    fn sample<R: Rng>(rng: &mut R, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + sample_below(rng, (range.end - range.start) as u64) as usize
    }
}

impl UniformInt for u64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + sample_below(rng, range.end - range.start)
    }
}

impl UniformInt for i64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let width = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(sample_below(rng, width) as i64)
    }
}

impl UniformInt for i32 {
    fn sample<R: Rng>(rng: &mut R, range: Range<i32>) -> i32 {
        assert!(range.start < range.end, "gen_range: empty range");
        let width = (range.end as i64 - range.start as i64) as u64;
        range.start.wrapping_add(sample_below(rng, width) as i32)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(0usize..7);
            assert_eq!(x, b.gen_range(0usize..7));
            assert!(x < 7);
            let y = a.gen_range(-5i64..5);
            assert_eq!(y, b.gen_range(-5i64..5));
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
