//! Lexer and recursive-descent parser for the restricted C subset.
//!
//! The accepted language is exactly what the paper's program class needs —
//! the four `foo` variants of Fig. 1 parse verbatim:
//!
//! ```c
//! #define N 1024
//! foo(int A[], int B[], int C[])
//! {
//!     int k, tmp[N], buf[2*N];
//!     for (k = 0; k < N; k++)
//! s1:     tmp[k] = B[2*k] + B[k];
//!     ...
//! }
//! ```
//!
//! Supported constructs: `#define` constants, a single function definition
//! with array parameters, local `int` declarations (scalars and arrays),
//! `for` loops with affine bounds and constant steps (`k++`, `k--`,
//! `k += c`, `k -= c`), `if`/`else` with a single affine comparison,
//! labelled assignments to array elements, and right-hand sides built from
//! `+ - * /`, parentheses and calls of uninterpreted functions.
//! `while`, pointers, and address arithmetic are rejected — programs using
//! them are outside the class by definition.

use crate::ast::*;
use crate::{LangError, Result};
use std::collections::BTreeMap;

/// Parses a complete function in the restricted class.
///
/// # Errors
///
/// Returns [`LangError::Parse`] on malformed input or constructs outside the
/// supported subset (e.g. `while` loops or pointer dereferences).
pub fn parse_program(src: &str) -> Result<Program> {
    Parser::new(src)?.parse_program()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(char),
    // multi-character punctuation
    Le,
    Ge,
    EqEq,
    Ne,
    PlusPlus,
    MinusMinus,
    PlusEq,
    MinusEq,
    Define,
    Param,
}

struct Parser {
    toks: Vec<(Tok, usize)>, // (token, line)
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        let mut toks = Vec::new();
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0;
        let mut line = 1;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '\n' => {
                    line += 1;
                    i += 1;
                }
                ' ' | '\t' | '\r' => i += 1,
                '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                    i += 2;
                    while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 2;
                }
                '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                }
                '#' => {
                    // `#define` / `#param`
                    let mut word = String::new();
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_alphabetic() {
                        word.push(chars[i]);
                        i += 1;
                    }
                    if word == "define" {
                        toks.push((Tok::Define, line));
                    } else if word == "param" {
                        toks.push((Tok::Param, line));
                    } else {
                        return Err(LangError::Parse {
                            message: format!("unsupported preprocessor directive `#{word}`"),
                            line,
                        });
                    }
                }
                '<' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                    toks.push((Tok::Le, line));
                    i += 2;
                }
                '>' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                    toks.push((Tok::Ge, line));
                    i += 2;
                }
                '=' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                    toks.push((Tok::EqEq, line));
                    i += 2;
                }
                '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                    toks.push((Tok::Ne, line));
                    i += 2;
                }
                '+' if i + 1 < chars.len() && chars[i + 1] == '+' => {
                    toks.push((Tok::PlusPlus, line));
                    i += 2;
                }
                '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                    toks.push((Tok::MinusMinus, line));
                    i += 2;
                }
                '+' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                    toks.push((Tok::PlusEq, line));
                    i += 2;
                }
                '-' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                    toks.push((Tok::MinusEq, line));
                    i += 2;
                }
                '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | ':' | '=' | '+' | '-' | '*'
                | '/' | '<' | '>' => {
                    toks.push((Tok::Punct(c), line));
                    i += 1;
                }
                _ if c.is_ascii_digit() => {
                    let mut v = 0i64;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        v = v * 10 + (chars[i] as i64 - '0' as i64);
                        i += 1;
                    }
                    toks.push((Tok::Int(v), line));
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let mut name = String::new();
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        name.push(chars[i]);
                        i += 1;
                    }
                    toks.push((Tok::Ident(name), line));
                }
                _ => {
                    return Err(LangError::Parse {
                        message: format!("unexpected character `{c}`"),
                        line,
                    })
                }
            }
        }
        Ok(Parser { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(LangError::Parse {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => self.err(format!("expected `{c}`, found {other:?}")),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(n),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(n)) if n == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut defines: BTreeMap<String, i64> = BTreeMap::new();
        let mut symbolic_params: Vec<(String, i64)> = Vec::new();
        // (#define NAME VALUE | #param NAME [>= MIN])*
        while matches!(self.peek(), Some(Tok::Define | Tok::Param)) {
            let is_param = matches!(self.peek(), Some(Tok::Param));
            self.bump();
            let name = self.expect_ident()?;
            if is_param {
                if defines.contains_key(&name) || symbolic_params.iter().any(|(n, _)| *n == name) {
                    return self.err("duplicate #param / #define name");
                }
                // Optional declared lower bound; sizes default to >= 1.
                let min = if matches!(self.peek(), Some(Tok::Ge)) {
                    self.bump();
                    self.parse_const_expr(&defines)?
                } else {
                    1
                };
                symbolic_params.push((name, min));
            } else {
                let value = self.parse_const_expr(&defines)?;
                defines.insert(name, value);
            }
        }

        // Optional return type (`void` / `int`), then the function name.
        if matches!(self.peek(), Some(Tok::Ident(n)) if n == "void" || n == "int") {
            // Distinguish `void foo(` / `int foo(` from `foo(`.
            if matches!(self.peek2(), Some(Tok::Ident(_))) {
                self.bump();
            }
        }
        let name = self.expect_ident()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                if !self.eat_keyword("int") {
                    return self.err("parameters must be declared as `int name[]`");
                }
                if self.eat_punct('*') {
                    return self.err("pointer parameters are outside the program class");
                }
                let pname = self.expect_ident()?;
                // Zero or more `[]` or `[expr]` suffixes.
                while self.eat_punct('[') {
                    if !self.eat_punct(']') {
                        let _ = self.parse_expr()?;
                        self.expect_punct(']')?;
                    }
                }
                params.push(pname);
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;

        // Local declarations: `int a, b[N], c[2*N];`
        let mut decls = Vec::new();
        while self.eat_keyword("int") {
            loop {
                if self.eat_punct('*') {
                    return self.err("pointer declarations are outside the program class");
                }
                let dname = self.expect_ident()?;
                let mut dims = Vec::new();
                while self.eat_punct('[') {
                    let e = self.parse_expr()?;
                    self.expect_punct(']')?;
                    dims.push(e);
                }
                decls.push(Decl { name: dname, dims });
                if self.eat_punct(';') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }

        let mut label_counter = 0usize;
        let body = self.parse_block_items(&mut label_counter)?;
        // The closing `}` was consumed by parse_block_items' caller loop; it
        // stops at `}` and leaves it, so consume it here.
        self.expect_punct('}')?;

        Ok(Program {
            name,
            defines,
            params,
            symbolic_params,
            decls,
            body,
        })
    }

    /// Parses a `#define` value: an integer literal or an expression over
    /// previously defined constants (evaluated immediately).
    fn parse_const_expr(&mut self, defines: &BTreeMap<String, i64>) -> Result<i64> {
        let e = self.parse_expr()?;
        eval_const(&e, defines).ok_or_else(|| LangError::Parse {
            message: "a #define value must be a constant expression".into(),
            line: self.line(),
        })
    }

    /// Parses statements until the next unmatched `}` (not consumed).
    fn parse_block_items(&mut self, label_counter: &mut usize) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return self.err("unexpected end of input, missing `}`"),
                Some(Tok::Punct('}')) => return Ok(out),
                _ => out.push(self.parse_stmt(label_counter)?),
            }
        }
    }

    /// Parses a single statement or braced block (flattened into its items).
    fn parse_stmt(&mut self, label_counter: &mut usize) -> Result<Stmt> {
        // `while` is explicitly rejected with a class-specific message.
        if matches!(self.peek(), Some(Tok::Ident(n)) if n == "while") {
            return self
                .err("`while` loops are outside the program class; convert to for-loops first");
        }
        if self.eat_keyword("for") {
            return self.parse_for(label_counter);
        }
        if self.eat_keyword("if") {
            return self.parse_if(label_counter);
        }
        // Optional label: `ident :` followed by an assignment.
        let label = if matches!(self.peek(), Some(Tok::Ident(_)))
            && matches!(self.peek2(), Some(Tok::Punct(':')))
        {
            let l = self.expect_ident()?;
            self.expect_punct(':')?;
            l
        } else {
            *label_counter += 1;
            format!("__a{}", *label_counter - 1)
        };
        self.parse_assign(label)
    }

    /// Parses a statement body: either a braced block or a single statement.
    fn parse_body(&mut self, label_counter: &mut usize) -> Result<Vec<Stmt>> {
        if self.eat_punct('{') {
            let items = self.parse_block_items(label_counter)?;
            self.expect_punct('}')?;
            Ok(items)
        } else {
            Ok(vec![self.parse_stmt(label_counter)?])
        }
    }

    fn parse_for(&mut self, label_counter: &mut usize) -> Result<Stmt> {
        self.expect_punct('(')?;
        let var = self.expect_ident()?;
        self.expect_punct('=')?;
        let init = self.parse_expr()?;
        self.expect_punct(';')?;
        let cond_lhs = self.parse_expr()?;
        let op = self.parse_cmp_op()?;
        let cond_rhs = self.parse_expr()?;
        self.expect_punct(';')?;
        // Step: `var++`, `var--`, `var += c`, `var -= c`, `var = var + c`.
        let step_var = self.expect_ident()?;
        if step_var != var {
            return self.err(format!(
                "for-loop step must update the iterator `{var}`, found `{step_var}`"
            ));
        }
        let step = match self.bump() {
            Some(Tok::PlusPlus) => 1,
            Some(Tok::MinusMinus) => -1,
            Some(Tok::PlusEq) => self.parse_step_amount()?,
            Some(Tok::MinusEq) => -self.parse_step_amount()?,
            Some(Tok::Punct('=')) => {
                // var = var + c  or  var = var - c
                let e = self.parse_expr()?;
                match step_from_assignment(&var, &e) {
                    Some(s) => s,
                    None => return self.err("unsupported for-loop step expression"),
                }
            }
            other => return self.err(format!("unsupported for-loop step {other:?}")),
        };
        self.expect_punct(')')?;
        let body = self.parse_body(label_counter)?;
        let cond = Cond::new(cond_lhs, op, cond_rhs);
        Ok(Stmt::For(For {
            var,
            init,
            cond,
            step,
            body,
        }))
    }

    fn parse_step_amount(&mut self) -> Result<i64> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            other => self.err(format!("for-loop step must be a constant, found {other:?}")),
        }
    }

    fn parse_if(&mut self, label_counter: &mut usize) -> Result<Stmt> {
        self.expect_punct('(')?;
        let lhs = self.parse_expr()?;
        let op = self.parse_cmp_op()?;
        let rhs = self.parse_expr()?;
        self.expect_punct(')')?;
        let then_branch = self.parse_body(label_counter)?;
        let else_branch = if self.eat_keyword("else") {
            self.parse_body(label_counter)?
        } else {
            Vec::new()
        };
        Ok(Stmt::If(If {
            cond: Cond::new(lhs, op, rhs),
            then_branch,
            else_branch,
        }))
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp> {
        match self.bump() {
            Some(Tok::Punct('<')) => Ok(CmpOp::Lt),
            Some(Tok::Punct('>')) => Ok(CmpOp::Gt),
            Some(Tok::Le) => Ok(CmpOp::Le),
            Some(Tok::Ge) => Ok(CmpOp::Ge),
            Some(Tok::EqEq) => Ok(CmpOp::Eq),
            Some(Tok::Ne) => Ok(CmpOp::Ne),
            other => self.err(format!("expected comparison operator, found {other:?}")),
        }
    }

    fn parse_assign(&mut self, label: String) -> Result<Stmt> {
        let array = self.expect_ident()?;
        let mut indices = Vec::new();
        while self.eat_punct('[') {
            let e = self.parse_expr()?;
            self.expect_punct(']')?;
            indices.push(e);
        }
        self.expect_punct('=')?;
        let rhs = self.parse_expr()?;
        self.expect_punct(';')?;
        Ok(Stmt::Assign(Assign {
            label,
            lhs: ArrayRef::new(array, indices),
            rhs,
        }))
    }

    // Expression grammar: additive over multiplicative over unary/primary.
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat_punct('+') {
                let rhs = self.parse_mul()?;
                lhs = Expr::add(lhs, rhs);
            } else if self.eat_punct('-') {
                let rhs = self.parse_mul()?;
                lhs = Expr::sub(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat_punct('*') {
                let rhs = self.parse_unary()?;
                lhs = Expr::mul(lhs, rhs);
            } else if self.eat_punct('/') {
                let rhs = self.parse_unary()?;
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_punct('-') {
            let e = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Const(v)),
            Some(Tok::Punct('(')) => {
                let e = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat_punct('(') {
                    // Function call.
                    let mut args = Vec::new();
                    if !self.eat_punct(')') {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(')') {
                                break;
                            }
                            self.expect_punct(',')?;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                let mut indices = Vec::new();
                while self.eat_punct('[') {
                    let e = self.parse_expr()?;
                    self.expect_punct(']')?;
                    indices.push(e);
                }
                if indices.is_empty() {
                    Ok(Expr::Var(name))
                } else {
                    Ok(Expr::Access(ArrayRef::new(name, indices)))
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

/// Derives the constant step from `var = var + c` / `var = c + var` /
/// `var = var - c` forms.
fn step_from_assignment(var: &str, e: &Expr) -> Option<i64> {
    match e {
        Expr::Bin(BinOp::Add, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Var(v), Expr::Const(c)) if v == var => Some(*c),
            (Expr::Const(c), Expr::Var(v)) if v == var => Some(*c),
            _ => None,
        },
        Expr::Bin(BinOp::Sub, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Var(v), Expr::Const(c)) if v == var => Some(-*c),
            _ => None,
        },
        _ => None,
    }
}

/// Evaluates an expression that uses only literals and `#define` constants.
pub fn eval_const(e: &Expr, defines: &BTreeMap<String, i64>) -> Option<i64> {
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(n) => defines.get(n).copied(),
        Expr::Neg(e) => eval_const(e, defines).map(|v| -v),
        Expr::Bin(op, l, r) => {
            let l = eval_const(l, defines)?;
            let r = eval_const(r, defines)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                BinOp::Div => {
                    if r == 0 {
                        None
                    } else {
                        Some(l / r)
                    }
                }
            }
        }
        Expr::Access(_) | Expr::Call(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::FIG1_A;

    #[test]
    fn parses_fig1_original_function() {
        let p = parse_program(FIG1_A).expect("fig 1(a) parses");
        assert_eq!(p.name, "foo");
        assert_eq!(p.params, vec!["A", "B", "C"]);
        assert_eq!(p.define("N"), Some(1024));
        let labels: Vec<&str> = p.statements().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, vec!["s1", "s2", "s3"]);
        // Down-counting loop is recognised.
        match &p.body[1] {
            Stmt::For(f) => {
                assert_eq!(f.step, -1);
                assert_eq!(f.cond.op, CmpOp::Ge);
            }
            other => panic!("expected for loop, got {other:?}"),
        }
        // Declarations include the 2*N-sized buffer.
        assert_eq!(p.decls.len(), 3);
        assert_eq!(p.intermediate_arrays(), vec!["tmp", "buf"]);
    }

    #[test]
    fn parses_if_else_and_strided_loops() {
        let src = r#"
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[N];
    for(k=0; k<512; k++)
t1:  tmp[k] = B[2*k] + B[k];
    for(k=0; k<N; k++){
t2:  buf[k] = A[2*k] + A[k];
     if (k < 512)
t3:    C[k] = tmp[k] + buf[k];
     else
t4:    C[k] = (B[2*k] + B[k])
                      + buf[k];
    }
}
"#;
        let p = parse_program(src).expect("fig 1(b) parses");
        let labels: Vec<&str> = p.statements().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, vec!["t1", "t2", "t3", "t4"]);
        let strided = r#"
#define N 16
foo(int A[], int B[], int C[])
{
    int k, buf[2*N];
    for(k=0; k<=2*N-2; k+=2)
u1:  buf[k] = A[k] + B[k];
    for(k=1; k<N; k+=2)
u2:  C[k] = buf[k-1] + A[k];
}
"#;
        let p = parse_program(strided).expect("strided loops parse");
        match &p.body[0] {
            Stmt::For(f) => assert_eq!(f.step, 2),
            _ => panic!("expected for"),
        }
    }

    #[test]
    fn unlabelled_statements_get_fresh_labels() {
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < 4; k++)
        C[k] = A[k] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        let labels: Vec<&str> = p.statements().map(|a| a.label.as_str()).collect();
        assert_eq!(labels.len(), 1);
        assert!(labels[0].starts_with("__a"));
    }

    #[test]
    fn rejects_while_and_pointers() {
        let w = r#"
void f(int A[], int C[]) {
    int k;
    while (k < 4) { C[k] = A[k]; }
}
"#;
        assert!(matches!(parse_program(w), Err(LangError::Parse { .. })));
        let ptr = r#"
void f(int *A, int C[]) {
    int k;
    for (k = 0; k < 4; k++)
        C[k] = A[k];
}
"#;
        assert!(matches!(parse_program(ptr), Err(LangError::Parse { .. })));
    }

    #[test]
    fn parses_calls_and_division() {
        let src = r#"
#define N 8
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
s1:     C[k] = clip(A[k] * 3, 255) + A[k] / 2;
}
"#;
        let p = parse_program(src).unwrap();
        let s1 = p.statement("s1").unwrap();
        match &s1.rhs {
            Expr::Bin(BinOp::Add, l, _) => match l.as_ref() {
                Expr::Call(name, args) => {
                    assert_eq!(name, "clip");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn define_arithmetic_and_multiple_defines() {
        let src = r#"
#define N 8
#define M 2*N
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < M; k++)
s1:     C[k] = A[k] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.define("M"), Some(16));
    }

    #[test]
    fn step_written_as_assignment() {
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < 8; k = k + 2)
s1:     C[k] = A[k] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::For(f) => assert_eq!(f.step, 2),
            _ => panic!("expected for"),
        }
    }

    #[test]
    fn error_carries_line_number() {
        let src = "#define N 8\nvoid f(int A[]) {\n  int k\n  for (k = 0; k < 2; k++) ;\n}";
        match parse_program(src) {
            Err(LangError::Parse { line, .. }) => assert!(line >= 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
