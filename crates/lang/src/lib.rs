//! # arrayeq-lang
//!
//! Frontend for the restricted C-like program class of the DATE 2005 paper
//! *"Functional Equivalence Checking for Verification of Algebraic
//! Transformations on Array-Intensive Source Code"*.
//!
//! The program class (Section 3.1 of the paper) has four properties:
//!
//! 1. **Dynamic single-assignment form** — every array element is written at
//!    most once during an execution;
//! 2. **Static control flow** — only `for` loops with affine bounds and
//!    simple affine `if` conditions;
//! 3. **Affine indices** — all array index expressions and loop bounds are
//!    (piecewise-)affine in the enclosing iterators;
//! 4. **No pointer references** — all memory accesses use explicit indexing.
//!
//! This crate provides everything needed to get from source text to the
//! analyses the equivalence checker builds on:
//!
//! * [`parser`] — lexer and recursive-descent parser for the class
//!   (functions such as the `foo` variants of Fig. 1 of the paper);
//! * [`ast`] — the abstract syntax tree and a programmatic builder;
//! * [`affine`] — lowering of loop nests and index expressions to
//!   iteration-domain [`Set`](arrayeq_omega::Set)s and access
//!   [`Relation`](arrayeq_omega::Relation)s;
//! * [`classcheck`] — verification that a parsed program actually lies in
//!   the class (single assignment, affine indices, static control);
//! * [`defuse`] — the def-use (schedule correctness) checker of Fig. 6;
//! * [`interp`] — a reference interpreter used as the "simulation" baseline
//!   and as a test oracle;
//! * [`pretty`] — a C pretty-printer for round-tripping and error reports.
//!
//! ## Example
//!
//! ```
//! use arrayeq_lang::parser::parse_program;
//!
//! let src = r#"
//!     #define N 8
//!     void foo(int A[], int C[]) {
//!         int k;
//!         for (k = 0; k < N; k++) {
//!     s1:     C[k] = A[k] + A[k + 1];
//!         }
//!     }
//! "#;
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.name, "foo");
//! assert_eq!(program.statements().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod ast;
pub mod classcheck;
pub mod corpus;
pub mod defuse;
pub mod interp;
pub mod parser;
pub mod pretty;

use std::fmt;

/// Errors produced by the language frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// The source text could not be tokenised or parsed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// 1-based line number of the offending token.
        line: usize,
    },
    /// The program is outside the supported class (Section 3.1 violations).
    Class {
        /// Which class property is violated and where.
        message: String,
    },
    /// An expression that must be affine is not.
    NotAffine {
        /// Rendering of the offending expression.
        expr: String,
        /// Context (statement label or loop) in which it appeared.
        context: String,
    },
    /// The def-use checker found a read that is not preceded by a write.
    DefUse {
        /// Description of the violating read.
        message: String,
    },
    /// A runtime error during interpretation (out-of-bounds, missing input,
    /// division by zero, ...).
    Runtime {
        /// Description of the failure.
        message: String,
    },
    /// An error bubbled up from the omega (integer set) layer.
    Omega(arrayeq_omega::OmegaError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse { message, line } => write!(f, "parse error (line {line}): {message}"),
            LangError::Class { message } => write!(f, "program class violation: {message}"),
            LangError::NotAffine { expr, context } => {
                write!(f, "non-affine expression `{expr}` in {context}")
            }
            LangError::DefUse { message } => write!(f, "def-use violation: {message}"),
            LangError::Runtime { message } => write!(f, "runtime error: {message}"),
            LangError::Omega(e) => write!(f, "integer-set error: {e}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Omega(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arrayeq_omega::OmegaError> for LangError {
    fn from(e: arrayeq_omega::OmegaError) -> Self {
        LangError::Omega(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LangError>;
