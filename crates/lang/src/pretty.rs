//! Pretty-printer: turns ASTs back into compilable restricted-C text.
//!
//! The printer is used by the transformation engine (whose output is an AST
//! that users may want to inspect as source), by error diagnostics (which
//! quote index expressions), and by tests that round-trip programs through
//! the parser.

use crate::ast::*;
use std::fmt::Write;

/// Renders an expression as C source.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Access(a) => array_ref_to_string(a),
        Expr::Neg(inner) => format!("-({})", expr_to_string(inner)),
        Expr::Bin(op, l, r) => {
            let ls = match l.as_ref() {
                Expr::Bin(inner_op, ..) if binds_looser(*inner_op, *op) => {
                    format!("({})", expr_to_string(l))
                }
                _ => expr_to_string(l),
            };
            let rs = match r.as_ref() {
                Expr::Bin(..) => format!("({})", expr_to_string(r)),
                _ => expr_to_string(r),
            };
            format!("{ls} {op} {rs}")
        }
        Expr::Call(name, args) => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

fn binds_looser(inner: BinOp, outer: BinOp) -> bool {
    let prec = |op: BinOp| match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div => 2,
    };
    prec(inner) < prec(outer)
}

/// Renders an array reference such as `buf[2*k - 2]`.
pub fn array_ref_to_string(a: &ArrayRef) -> String {
    let mut s = a.array.clone();
    for idx in &a.indices {
        let _ = write!(s, "[{}]", expr_to_string(idx));
    }
    s
}

/// Renders a condition such as `k < 512`.
pub fn cond_to_string(c: &Cond) -> String {
    format!(
        "{} {} {}",
        expr_to_string(&c.lhs),
        c.op,
        expr_to_string(&c.rhs)
    )
}

/// Renders a whole program as compilable C text.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for (name, value) in &p.defines {
        let _ = writeln!(out, "#define {name} {value}");
    }
    for (name, min) in &p.symbolic_params {
        let _ = writeln!(out, "#param {name} >= {min}");
    }
    let params: Vec<String> = p.params.iter().map(|n| format!("int {n}[]")).collect();
    let _ = writeln!(out, "void {}({})", p.name, params.join(", "));
    let _ = writeln!(out, "{{");
    if !p.decls.is_empty() {
        let decls: Vec<String> = p
            .decls
            .iter()
            .map(|d| {
                let mut s = d.name.clone();
                for dim in &d.dims {
                    let _ = write!(s, "[{}]", expr_to_string(dim));
                }
                s
            })
            .collect();
        let _ = writeln!(out, "    int {};", decls.join(", "));
    }
    for s in &p.body {
        write_stmt(&mut out, s, 1);
    }
    let _ = writeln!(out, "}}");
    out
}

fn write_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(a) => {
            let _ = writeln!(
                out,
                "{}{}: {} = {};",
                pad,
                a.label,
                array_ref_to_string(&a.lhs),
                expr_to_string(&a.rhs)
            );
        }
        Stmt::For(f) => {
            let step = match f.step {
                1 => format!("{}++", f.var),
                -1 => format!("{}--", f.var),
                s if s > 0 => format!("{} += {}", f.var, s),
                s => format!("{} -= {}", f.var, -s),
            };
            let _ = writeln!(
                out,
                "{}for ({} = {}; {}; {}) {{",
                pad,
                f.var,
                expr_to_string(&f.init),
                cond_to_string(&f.cond),
                step
            );
            for inner in &f.body {
                write_stmt(out, inner, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If(i) => {
            let _ = writeln!(out, "{}if ({}) {{", pad, cond_to_string(&i.cond));
            for inner in &i.then_branch {
                write_stmt(out, inner, indent + 1);
            }
            if i.else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for inner in &i.else_branch {
                    write_stmt(out, inner, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{FIG1_ALL, KERNELS};
    use crate::parser::parse_program;

    #[test]
    fn programs_round_trip_through_printer_and_parser() {
        for (name, src) in FIG1_ALL.iter().chain(KERNELS.iter()) {
            let p = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let printed = program_to_string(&p);
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("{name} reparse failed: {e}\n{printed}"));
            // Statement labels, targets and rhs structure must be preserved.
            let a: Vec<_> = p.statements().collect();
            let b: Vec<_> = reparsed.statements().collect();
            assert_eq!(a.len(), b.len(), "{name}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.label, y.label, "{name}");
                assert_eq!(x.lhs, y.lhs, "{name}");
                assert_eq!(x.rhs, y.rhs, "{name}");
            }
        }
    }

    #[test]
    fn expression_rendering_respects_precedence() {
        // (a + b) * c must keep its parentheses.
        let e = Expr::mul(Expr::add(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(expr_to_string(&e), "(a + b) * c");
        let e2 = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::var("c")));
        assert_eq!(expr_to_string(&e2), "a + (b * c)");
    }

    #[test]
    fn conditions_and_array_refs_render() {
        let c = Cond::new(Expr::var("k"), CmpOp::Lt, Expr::Const(512));
        assert_eq!(cond_to_string(&c), "k < 512");
        let a = ArrayRef::new(
            "buf",
            vec![Expr::sub(
                Expr::mul(Expr::Const(2), Expr::var("k")),
                Expr::Const(2),
            )],
        );
        assert_eq!(array_ref_to_string(&a), "buf[2 * k - 2]");
    }
}
