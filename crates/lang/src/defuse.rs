//! The def-use (schedule correctness) checker of Fig. 6.
//!
//! The paper's sufficient condition assumes that both programs are correctly
//! scheduled, i.e. that every value is written before it is read.  This
//! module checks that assumption with standard array data-flow analysis:
//!
//! * **Coverage** — every element of a non-input array that a statement reads
//!   is written by *some* statement of the program;
//! * **Ordering** — for every (write statement, read statement) pair touching
//!   the same element, no read instance executes at or before the write
//!   instance that produces its value, under the original lexicographic
//!   execution order (2d+1 schedules built from textual positions and loop
//!   iterators).
//!
//! Both checks are exact integer-set computations on the access relations
//! produced by [`crate::affine`].

use crate::affine::{analyze, ScheduleComponent, StatementInfo};
use crate::ast::Program;
use crate::{LangError, Result};
use arrayeq_omega::{Conjunct, Constraint, Relation, Set, Space, VarKind};

/// One def-use problem found in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefUseViolation {
    /// Label of the reading statement.
    pub reader: String,
    /// The array whose element is read.
    pub array: String,
    /// Label of the writing statement involved (empty for coverage errors).
    pub writer: Option<String>,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for DefUseViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} reading {}: {}",
            self.reader, self.array, self.message
        )
    }
}

/// Result of the def-use check.
#[derive(Debug, Clone, Default)]
pub struct DefUseReport {
    /// All violations found.
    pub violations: Vec<DefUseViolation>,
}

impl DefUseReport {
    /// Whether the def-use order is correct.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the def-use check on a program.
///
/// # Errors
///
/// Returns an error when the underlying affine analysis fails; order and
/// coverage problems are reported in the [`DefUseReport`] instead.
pub fn check_def_use(program: &Program) -> Result<DefUseReport> {
    let infos = analyze(program)?;
    let inputs = program.input_arrays();
    let mut report = DefUseReport::default();

    for reader in &infos {
        for access in reader.rhs.reads() {
            if inputs.contains(&access.array) {
                continue; // inputs are defined by the environment
            }
            let read_set = reader.read_element_set(access)?;
            // Coverage: the read elements must be covered by writes.
            let writers: Vec<&StatementInfo> =
                infos.iter().filter(|w| w.target == access.array).collect();
            let mut written: Option<Set> = None;
            for w in &writers {
                let ws = w.write_element_set()?;
                written = Some(match written {
                    None => ws,
                    Some(acc) => acc.union(&ws)?,
                });
            }
            let covered = match &written {
                None => read_set.is_empty(),
                Some(w) => read_set.is_subset(w)?,
            };
            if !covered {
                report.violations.push(DefUseViolation {
                    reader: reader.label.clone(),
                    array: access.array.clone(),
                    writer: None,
                    message: format!(
                        "reads elements of `{}` that no statement writes",
                        access.array
                    ),
                });
            }
            // Ordering: no write of an element may execute at or after a read
            // of the same element.
            for w in &writers {
                let conflict = write_read_order_violation(w, reader, access)?;
                if !conflict.is_empty() {
                    report.violations.push(DefUseViolation {
                        reader: reader.label.clone(),
                        array: access.array.clone(),
                        writer: Some(w.label.clone()),
                        message: format!(
                            "some instances read an element of `{}` before statement {} writes it",
                            access.array, w.label
                        ),
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Convenience wrapper turning violations into an error.
///
/// # Errors
///
/// Returns [`LangError::DefUse`] when the def-use order is broken.
pub fn assert_def_use_correct(program: &Program) -> Result<()> {
    let report = check_def_use(program)?;
    if report.is_ok() {
        Ok(())
    } else {
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        Err(LangError::DefUse {
            message: rendered.join("; "),
        })
    }
}

/// Builds the relation of (write instance, read instance) pairs that touch
/// the same array element with the read scheduled **at or before** the write;
/// a non-empty relation is a def-use violation.
fn write_read_order_violation(
    writer: &StatementInfo,
    reader: &StatementInfo,
    access: &crate::ast::ArrayRef,
) -> Result<Relation> {
    // Same-element pairs: write_rel : wi -> elem, read_rel : ri -> elem, so
    // pairs = write_rel ∘ read_rel⁻¹ : wi -> ri.
    let pairs = writer
        .write_relation()?
        .compose(&reader.read_relation(access)?.inverse())?;

    // Schedule constraint: time(reader at ri) <= time(writer at wi).
    let order = lex_le(reader, writer)?.inverse(); // wi -> ri with read <= write
    Ok(pairs.intersect(&order)?.simplified(true))
}

/// The relation `{ [a iters] -> [b iters] : time_a <= time_b }` under the
/// textual 2d+1 schedules of statements `a` and `b`.
fn lex_le(a: &StatementInfo, b: &StatementInfo) -> Result<Relation> {
    let space = Space::relation(&a.iters, &b.iters, &a.param_names());
    let comps_a = a.schedule_components();
    let comps_b = b.schedule_components();
    let min_len = comps_a.len().min(comps_b.len());

    let mut result = Relation::empty(space.clone());

    // Case "strictly less at position p, equal before": one disjunct per p.
    for p in 0..min_len {
        let mut conj = Conjunct::universe(space.clone());
        let mut feasible = true;
        for q in 0..p {
            if !add_component_cmp(&mut conj, a, b, &comps_a[q], &comps_b[q], Cmp::Eq) {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        if !add_component_cmp(&mut conj, a, b, &comps_a[p], &comps_b[p], Cmp::Lt) {
            continue;
        }
        add_domains(&mut conj, a, b, &space)?;
        result = result.union(&Relation::from_conjuncts(space.clone(), vec![conj]))?;
    }

    // Case "equal on the whole common prefix" (covers identical instances and
    // prefix-length schedules).
    let mut conj = Conjunct::universe(space.clone());
    let mut feasible = true;
    for q in 0..min_len {
        if !add_component_cmp(&mut conj, a, b, &comps_a[q], &comps_b[q], Cmp::Eq) {
            feasible = false;
            break;
        }
    }
    if feasible {
        add_domains(&mut conj, a, b, &space)?;
        result = result.union(&Relation::from_conjuncts(space.clone(), vec![conj]))?;
    }

    Ok(result)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Cmp {
    Eq,
    Lt,
}

/// Adds the constraint `comp_a (cmp) comp_b` to `conj`; returns `false` when
/// the constraint is trivially unsatisfiable (constant vs constant), letting
/// the caller prune the disjunct early.
fn add_component_cmp(
    conj: &mut Conjunct,
    a: &StatementInfo,
    b: &StatementInfo,
    ca: &ScheduleComponent,
    cb: &ScheduleComponent,
    cmp: Cmp,
) -> bool {
    let expr_of = |conj: &Conjunct, stmt: &StatementInfo, c: &ScheduleComponent, kind: VarKind| {
        let mut e = conj.zero_expr();
        match c {
            ScheduleComponent::Const(v) => e.set_constant(*v),
            ScheduleComponent::Iter(level) => {
                let _ = stmt;
                e.set_coeff(conj.col(kind, *level), 1);
            }
        }
        e
    };
    // Prune constant-vs-constant comparisons without touching the solver.
    if let (ScheduleComponent::Const(x), ScheduleComponent::Const(y)) = (ca, cb) {
        return match cmp {
            Cmp::Eq => x == y,
            Cmp::Lt => x < y,
        };
    }
    let ea = expr_of(conj, a, ca, VarKind::In);
    let eb = expr_of(conj, b, cb, VarKind::Out);
    match cmp {
        Cmp::Eq => {
            let mut diff = ea;
            diff.add_scaled_assign(&eb, -1);
            conj.add(Constraint::eq(diff));
        }
        Cmp::Lt => {
            // ea < eb  ⇔  eb - ea - 1 >= 0
            let mut diff = eb;
            diff.add_scaled_assign(&ea, -1);
            diff.set_constant(diff.constant() - 1);
            conj.add(Constraint::geq(diff));
        }
    }
    true
}

/// Adds the iteration-domain constraints of both statements to a conjunct
/// over `[a iters] -> [b iters]`.
fn add_domains(
    conj: &mut Conjunct,
    a: &StatementInfo,
    b: &StatementInfo,
    space: &Space,
) -> Result<()> {
    // Use the first disjunct union by intersecting later: embed domains as
    // relation constraints via restrict_domain/range on a universe relation
    // would lose the conjunct; simpler: conjoin each statement's *full*
    // domain (all disjuncts united) by restricting afterwards.  To keep this
    // function simple we add only box constraints here and rely on the caller
    // intersecting with the access relations, which already carry the exact
    // domains.  (The access relations in `write_read_order_violation` include
    // every domain constraint, so correctness does not depend on this.)
    let _ = (conj, a, b, space);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{FIG1_ALL, KERNELS};
    use crate::parser::parse_program;

    #[test]
    fn paper_programs_pass_def_use() {
        for (name, src) in FIG1_ALL {
            let p = parse_program(src).unwrap();
            let report = check_def_use(&p).unwrap();
            assert!(
                report.is_ok(),
                "fig1({name}) def-use should pass: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn kernels_pass_def_use() {
        for (name, src) in KERNELS {
            let p = parse_program(src).unwrap();
            let report = check_def_use(&p).unwrap();
            assert!(
                report.is_ok(),
                "kernel {name} def-use should pass: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn reading_before_writing_is_detected() {
        // The consumer loop comes before the producer loop.
        let src = r#"
#define N 8
void f(int A[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     C[k] = tmp[k] + A[k];
    for (k = 0; k < N; k++)
s2:     tmp[k] = A[k] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        let report = check_def_use(&p).unwrap();
        assert!(!report.is_ok());
        assert!(report
            .violations
            .iter()
            .any(|v| v.reader == "s1" && v.writer.as_deref() == Some("s2")));
        assert!(assert_def_use_correct(&p).is_err());
    }

    #[test]
    fn uncovered_reads_are_detected() {
        // tmp[8..15] is read but never written.
        let src = r#"
#define N 8
void f(int A[], int C[]) {
    int k, tmp[16];
    for (k = 0; k < N; k++)
s1:     tmp[k] = A[k] + 1;
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k + 8] + A[k];
}
"#;
        let p = parse_program(src).unwrap();
        let report = check_def_use(&p).unwrap();
        assert!(!report.is_ok());
        assert!(report
            .violations
            .iter()
            .any(|v| v.writer.is_none() && v.message.contains("no statement writes")));
    }

    #[test]
    fn same_loop_producer_consumer_order_is_respected() {
        // Within one loop body, s1 writes tmp[k] and s2 reads it afterwards:
        // correct.  Reading tmp[k+1] instead would be a violation because it
        // is written only in the *next* iteration.
        let good = r#"
#define N 8
void f(int A[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++) {
s1:     tmp[k] = A[k] + 1;
s2:     C[k] = tmp[k] + A[k];
    }
}
"#;
        let p = parse_program(good).unwrap();
        assert!(check_def_use(&p).unwrap().is_ok());

        let bad = r#"
#define N 8
void f(int A[], int C[]) {
    int k, tmp[9];
    for (k = 0; k < N; k++) {
s1:     tmp[k] = A[k] + 1;
s2:     C[k] = tmp[k + 1] + A[k];
    }
}
"#;
        let p = parse_program(bad).unwrap();
        let report = check_def_use(&p).unwrap();
        assert!(!report.is_ok());
    }

    #[test]
    fn recurrence_reading_its_own_past_is_accepted() {
        let p = parse_program(crate::corpus::KERNEL_RECURRENCE).unwrap();
        let report = check_def_use(&p).unwrap();
        assert!(report.is_ok(), "{:?}", report.violations);
    }
}
