//! Lowering of loop nests and index expressions to affine form.
//!
//! This module turns the AST of a program in the restricted class into the
//! per-statement geometric information everything else is built on:
//!
//! * the **iteration domain** of each assignment (a [`Set`] over its
//!   enclosing loop iterators, including strides and `if` guards),
//! * the **write access relation** `{ [iters] -> [element] }` of its
//!   left-hand side, and
//! * the **read access relations** of every array operand on its right-hand
//!   side.
//!
//! These are exactly the ingredients of the paper's *dependency mappings*
//! (Section 3.2): the mapping from the elements defined by a statement to the
//! elements of operand `v` is `write⁻¹ ∘ read_v`.

use crate::ast::*;
use crate::{LangError, Result};
use arrayeq_omega::{Conjunct, Constraint, LinExpr, Relation, Set, Space, VarKind};
use std::collections::BTreeMap;

/// An affine expression over loop-iterator names: `Σ aᵢ·iterᵢ + c`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Coefficient per iterator name (absent means 0).
    pub coeffs: BTreeMap<String, i64>,
    /// Constant term.
    pub konst: i64,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Affine {
        Affine {
            coeffs: BTreeMap::new(),
            konst: c,
        }
    }

    /// The expression `1·name`.
    pub fn var(name: &str) -> Affine {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_owned(), 1);
        Affine { coeffs, konst: 0 }
    }

    /// `self + k·other`.
    pub fn add_scaled(&mut self, other: &Affine, k: i64) {
        for (n, &c) in &other.coeffs {
            *self.coeffs.entry(n.clone()).or_insert(0) += k * c;
        }
        self.konst += k * other.konst;
    }

    /// `k·self`.
    pub fn scale(&self, k: i64) -> Affine {
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .map(|(n, &c)| (n.clone(), c * k))
                .collect(),
            konst: self.konst * k,
        }
    }

    /// Whether the expression has no iterator terms.
    pub fn is_constant(&self) -> bool {
        self.coeffs.values().all(|&c| c == 0)
    }

    /// Evaluates the expression for concrete iterator values.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> i64 {
        self.coeffs
            .iter()
            .map(|(n, c)| c * env.get(n).copied().unwrap_or(0))
            .sum::<i64>()
            + self.konst
    }

    /// Lowers the expression into a [`LinExpr`] over a conjunct whose input
    /// dims are the iterators listed in `iters` (in order).  Names not found
    /// among the iterators are resolved as symbolic parameters of the space.
    fn to_linexpr(
        &self,
        conj: &Conjunct,
        iters: &[String],
        params: &[String],
        kind: VarKind,
    ) -> LinExpr {
        let mut e = conj.zero_expr();
        for (name, &c) in &self.coeffs {
            let col = if let Some(idx) = iters.iter().position(|n| n == name) {
                conj.col(kind, idx)
            } else {
                let idx = params
                    .iter()
                    .position(|n| n == name)
                    .expect("name resolved during analysis");
                conj.col(VarKind::Param, idx)
            };
            e.set_coeff(col, c);
        }
        e.set_constant(self.konst);
        e
    }
}

/// Converts an AST expression into affine form over the given iterators and
/// symbolic parameters.
///
/// `#define` constants are folded; `#param` names stay symbolic (they become
/// parameter columns in the omega layer); any other variable, array access or
/// call makes the expression non-affine.
///
/// # Errors
///
/// Returns [`LangError::NotAffine`] when the expression cannot be brought to
/// affine form (e.g. a product of two iterators).
pub fn affine_of_expr(
    e: &Expr,
    iters: &[String],
    params: &[String],
    defines: &BTreeMap<String, i64>,
    context: &str,
) -> Result<Affine> {
    let not_affine = || LangError::NotAffine {
        expr: crate::pretty::expr_to_string(e),
        context: context.to_owned(),
    };
    match e {
        Expr::Const(v) => Ok(Affine::constant(*v)),
        Expr::Var(n) => {
            if iters.contains(n) || params.contains(n) {
                Ok(Affine::var(n))
            } else if let Some(&v) = defines.get(n) {
                Ok(Affine::constant(v))
            } else {
                Err(not_affine())
            }
        }
        Expr::Neg(inner) => Ok(affine_of_expr(inner, iters, params, defines, context)?.scale(-1)),
        Expr::Bin(op, l, r) => {
            let la = affine_of_expr(l, iters, params, defines, context)?;
            let ra = affine_of_expr(r, iters, params, defines, context)?;
            match op {
                BinOp::Add => {
                    let mut out = la;
                    out.add_scaled(&ra, 1);
                    Ok(out)
                }
                BinOp::Sub => {
                    let mut out = la;
                    out.add_scaled(&ra, -1);
                    Ok(out)
                }
                BinOp::Mul => {
                    if la.is_constant() {
                        Ok(ra.scale(la.konst))
                    } else if ra.is_constant() {
                        Ok(la.scale(ra.konst))
                    } else {
                        Err(not_affine())
                    }
                }
                BinOp::Div => {
                    if la.is_constant() && ra.is_constant() && ra.konst != 0 {
                        Ok(Affine::constant(la.konst / ra.konst))
                    } else {
                        Err(not_affine())
                    }
                }
            }
        }
        Expr::Access(_) | Expr::Call(..) => Err(not_affine()),
    }
}

/// One constraint of an iteration domain, over the enclosing iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainConstraint {
    /// `expr ≥ 0`
    Geq(Affine),
    /// `expr = 0`
    Eq(Affine),
    /// `expr ≡ 0 (mod m)` (loop strides)
    Mod(Affine, i64),
}

impl DomainConstraint {
    /// Evaluates the constraint for concrete iterator values.
    pub fn holds(&self, env: &BTreeMap<String, i64>) -> bool {
        match self {
            DomainConstraint::Geq(a) => a.eval(env) >= 0,
            DomainConstraint::Eq(a) => a.eval(env) == 0,
            DomainConstraint::Mod(a, m) => a.eval(env).rem_euclid(*m) == 0,
        }
    }
}

/// The geometric summary of one assignment statement.
#[derive(Debug, Clone)]
pub struct StatementInfo {
    /// The statement label.
    pub label: String,
    /// Index of the statement in textual order (0-based).
    pub position: usize,
    /// The array defined by the statement.
    pub target: String,
    /// Affine write index expressions, one per array dimension.
    pub write_indices: Vec<Affine>,
    /// The right-hand side expression (operator tree).
    pub rhs: Expr,
    /// Enclosing loop iterators, outermost first.
    pub iters: Vec<String>,
    /// Iteration domain in disjunctive normal form: a union of conjunctions
    /// of [`DomainConstraint`]s (the union comes from `!=` guards).
    pub domains: Vec<Vec<DomainConstraint>>,
    /// Textual position constants of the 2d+1 schedule: one entry per loop
    /// level plus one for the innermost statement position.
    pub schedule_consts: Vec<i64>,
    /// The `#define` environment of the program (needed to lower reads).
    pub defines: BTreeMap<String, i64>,
    /// Symbolic size parameters of the program (`#param N >= min`): name and
    /// declared lower bound.  They become parameter columns of every space
    /// built from this statement, so domains and access relations stay
    /// parametric in them.
    pub symbolic_params: Vec<(String, i64)>,
}

/// Analyzes a program: returns one [`StatementInfo`] per assignment, in
/// textual order.
///
/// # Errors
///
/// Returns [`LangError::NotAffine`] / [`LangError::Class`] when bounds,
/// steps, guards or index expressions fall outside the affine class.
pub fn analyze(program: &Program) -> Result<Vec<StatementInfo>> {
    let mut out = Vec::new();
    let mut walker = Walker {
        defines: program.defines.clone(),
        symbolic_params: program.symbolic_params.clone(),
        param_names: program
            .symbolic_params
            .iter()
            .map(|(n, _)| n.clone())
            .collect(),
        out: &mut out,
        position: 0,
    };
    let mut ctx = Ctx {
        iters: Vec::new(),
        domains: vec![Vec::new()],
        schedule_consts: vec![0],
    };
    walker.walk_block(&program.body, &mut ctx)?;
    Ok(out)
}

/// Context accumulated while descending into loops and guards.
#[derive(Debug, Clone)]
struct Ctx {
    iters: Vec<String>,
    /// DNF of domain constraints accumulated so far.
    domains: Vec<Vec<DomainConstraint>>,
    /// Position constants per loop level (last entry = position in the
    /// current block).
    schedule_consts: Vec<i64>,
}

struct Walker<'a> {
    defines: BTreeMap<String, i64>,
    symbolic_params: Vec<(String, i64)>,
    param_names: Vec<String>,
    out: &'a mut Vec<StatementInfo>,
    position: usize,
}

impl Walker<'_> {
    fn walk_block(&mut self, stmts: &[Stmt], ctx: &mut Ctx) -> Result<()> {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    self.emit(a, ctx)?;
                    *ctx.schedule_consts.last_mut().expect("non-empty") += 1;
                }
                Stmt::For(f) => {
                    let mut inner = ctx.clone();
                    self.push_loop(f, &mut inner)?;
                    self.walk_block(&f.body, &mut inner)?;
                    *ctx.schedule_consts.last_mut().expect("non-empty") += 1;
                }
                Stmt::If(i) => {
                    let mut then_ctx = ctx.clone();
                    add_condition(
                        &mut then_ctx,
                        &i.cond,
                        false,
                        &ctx.iters,
                        &self.param_names,
                        &self.defines,
                    )?;
                    // Keep the schedule position shared by both branches but
                    // distinct per statement inside, by continuing to count in
                    // the parent counter through the recursive calls.
                    then_ctx.schedule_consts = ctx.schedule_consts.clone();
                    self.walk_block(&i.then_branch, &mut then_ctx)?;
                    *ctx.schedule_consts.last_mut().expect("non-empty") =
                        *then_ctx.schedule_consts.last().expect("non-empty");

                    let mut else_ctx = ctx.clone();
                    add_condition(
                        &mut else_ctx,
                        &i.cond,
                        true,
                        &ctx.iters,
                        &self.param_names,
                        &self.defines,
                    )?;
                    else_ctx.schedule_consts = ctx.schedule_consts.clone();
                    self.walk_block(&i.else_branch, &mut else_ctx)?;
                    *ctx.schedule_consts.last_mut().expect("non-empty") =
                        *else_ctx.schedule_consts.last().expect("non-empty");
                }
            }
        }
        Ok(())
    }

    fn push_loop(&mut self, f: &For, ctx: &mut Ctx) -> Result<()> {
        let context = format!("for-loop over `{}`", f.var);
        if f.step == 0 {
            return Err(LangError::Class {
                message: format!("{context} has step 0"),
            });
        }
        if ctx.iters.contains(&f.var) {
            return Err(LangError::Class {
                message: format!("iterator `{}` shadows an enclosing iterator", f.var),
            });
        }
        if self.param_names.contains(&f.var) {
            return Err(LangError::Class {
                message: format!("iterator `{}` shadows a #param", f.var),
            });
        }
        let outer_iters = ctx.iters.clone();
        ctx.iters.push(f.var.clone());
        let iters = ctx.iters.clone();

        let init = affine_of_expr(
            &f.init,
            &outer_iters,
            &self.param_names,
            &self.defines,
            &context,
        )?;
        let var = Affine::var(&f.var);

        let mut constraints = Vec::new();
        if f.step > 0 {
            // var >= init
            let mut lower = var.clone();
            lower.add_scaled(&init, -1);
            constraints.push(DomainConstraint::Geq(lower));
        } else {
            // var <= init
            let mut upper = init.clone();
            upper.add_scaled(&var, -1);
            constraints.push(DomainConstraint::Geq(upper));
        }
        if f.step.abs() > 1 {
            // (var - init) ≡ 0  (mod |step|)
            let mut diff = var.clone();
            diff.add_scaled(&init, -1);
            constraints.push(DomainConstraint::Mod(diff, f.step.abs()));
        }
        // The loop-continuation condition.
        constraints.extend(condition_constraints(
            &f.cond,
            false,
            &iters,
            &self.param_names,
            &self.defines,
            &context,
        )?);

        for conj in &mut ctx.domains {
            conj.extend(constraints.iter().cloned());
        }
        ctx.schedule_consts.push(0);
        Ok(())
    }

    fn emit(&mut self, a: &Assign, ctx: &Ctx) -> Result<()> {
        let context = format!("statement {}", a.label);
        let write_indices = a
            .lhs
            .indices
            .iter()
            .map(|e| affine_of_expr(e, &ctx.iters, &self.param_names, &self.defines, &context))
            .collect::<Result<Vec<_>>>()?;
        self.out.push(StatementInfo {
            label: a.label.clone(),
            position: self.position,
            target: a.lhs.array.clone(),
            write_indices,
            rhs: a.rhs.clone(),
            iters: ctx.iters.clone(),
            domains: ctx.domains.clone(),
            schedule_consts: ctx.schedule_consts.clone(),
            defines: self.defines.clone(),
            symbolic_params: self.symbolic_params.clone(),
        });
        self.position += 1;
        Ok(())
    }
}

/// Adds an `if` condition (or its negation) to every disjunct of a context.
fn add_condition(
    ctx: &mut Ctx,
    cond: &Cond,
    negate: bool,
    iters: &[String],
    params: &[String],
    defines: &BTreeMap<String, i64>,
) -> Result<()> {
    let constraints = condition_constraints(cond, negate, iters, params, defines, "if condition")?;
    // `!=` (or a negated `==`) yields a disjunction of two constraints; any
    // other comparison yields a single conjunction.  `condition_constraints`
    // encodes the disjunctive case by returning `DisjunctionMarker`-free pairs
    // handled here: when two Geq constraints are returned for an (in)equality
    // split, each goes into its own copy of the DNF.
    match constraints.as_slice() {
        [only] => {
            for conj in &mut ctx.domains {
                conj.push(only.clone());
            }
        }
        [a, b] if is_disequality_split(cond, negate) => {
            let mut doubled = Vec::with_capacity(ctx.domains.len() * 2);
            for conj in &ctx.domains {
                let mut left = conj.clone();
                left.push(a.clone());
                doubled.push(left);
                let mut right = conj.clone();
                right.push(b.clone());
                doubled.push(right);
            }
            ctx.domains = doubled;
        }
        many => {
            for conj in &mut ctx.domains {
                conj.extend(many.iter().cloned());
            }
        }
    }
    Ok(())
}

/// Whether the (possibly negated) condition is a disequality, which lowers to
/// a *union* of two half-spaces rather than a conjunction.
fn is_disequality_split(cond: &Cond, negate: bool) -> bool {
    matches!((cond.op, negate), (CmpOp::Ne, false) | (CmpOp::Eq, true))
}

/// Lowers a single comparison (possibly negated) into domain constraints.
fn condition_constraints(
    cond: &Cond,
    negate: bool,
    iters: &[String],
    params: &[String],
    defines: &BTreeMap<String, i64>,
    context: &str,
) -> Result<Vec<DomainConstraint>> {
    let l = affine_of_expr(&cond.lhs, iters, params, defines, context)?;
    let r = affine_of_expr(&cond.rhs, iters, params, defines, context)?;
    let op = if negate { cond.op.negated() } else { cond.op };
    // diff_ge: r - l, diff_le: l - r
    let mut r_minus_l = r.clone();
    r_minus_l.add_scaled(&l, -1);
    let mut l_minus_r = l.clone();
    l_minus_r.add_scaled(&r, -1);
    Ok(match op {
        CmpOp::Lt => {
            let mut d = r_minus_l;
            d.konst -= 1;
            vec![DomainConstraint::Geq(d)]
        }
        CmpOp::Le => vec![DomainConstraint::Geq(r_minus_l)],
        CmpOp::Gt => {
            let mut d = l_minus_r;
            d.konst -= 1;
            vec![DomainConstraint::Geq(d)]
        }
        CmpOp::Ge => vec![DomainConstraint::Geq(l_minus_r)],
        CmpOp::Eq => vec![DomainConstraint::Eq(l_minus_r)],
        CmpOp::Ne => {
            // l < r  or  l > r — two half-spaces, turned into a DNF split by
            // the caller.
            let mut lt = r_minus_l;
            lt.konst -= 1;
            let mut gt = l_minus_r;
            gt.konst -= 1;
            vec![DomainConstraint::Geq(lt), DomainConstraint::Geq(gt)]
        }
    })
}

impl StatementInfo {
    /// Names of the program's symbolic parameters, in declaration order.
    pub fn param_names(&self) -> Vec<String> {
        self.symbolic_params
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Adds each parameter's declared lower bound (`param − min ≥ 0`) to a
    /// conjunct, so feasibility queries see the `#param N >= min` context.
    fn add_param_bounds(&self, c: &mut Conjunct) {
        for (p, (_, min)) in self.symbolic_params.iter().enumerate() {
            let mut e = c.zero_expr();
            e.set_coeff(c.col(VarKind::Param, p), 1);
            e.set_constant(-*min);
            c.add(Constraint::geq(e));
        }
    }

    /// The iteration-domain [`Set`] over the statement's iterators.
    pub fn iteration_domain(&self) -> Result<Set> {
        let params = self.param_names();
        let space = Space::set(&self.iters, &params);
        let mut conjuncts = Vec::new();
        for disjunct in &self.domains {
            let mut c = Conjunct::universe(space.clone());
            for dc in disjunct {
                c.add(lower_domain_constraint(dc, &c, &self.iters, &params));
            }
            self.add_param_bounds(&mut c);
            conjuncts.push(c);
        }
        Ok(Set::from_relation(Relation::from_conjuncts(
            space, conjuncts,
        )))
    }

    /// The write access relation `{ [iters] -> [element] : iters ∈ domain }`.
    pub fn write_relation(&self) -> Result<Relation> {
        self.access_relation(&self.write_indices)
    }

    /// The read access relation of one right-hand-side array operand.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::NotAffine`] if the access's index expressions are
    /// not affine in the statement's iterators.
    pub fn read_relation(&self, access: &ArrayRef) -> Result<Relation> {
        let context = format!("read of {} in statement {}", access.array, self.label);
        let idx = access
            .indices
            .iter()
            .map(|e| affine_of_expr(e, &self.iters, &self.param_names(), &self.defines, &context))
            .collect::<Result<Vec<_>>>()?;
        self.access_relation(&idx)
    }

    /// The set of array elements written by the statement (the range of the
    /// write relation).
    pub fn write_element_set(&self) -> Result<Set> {
        Ok(self.write_relation()?.range())
    }

    /// The set of elements of `access`'s array read by the statement.
    pub fn read_element_set(&self, access: &ArrayRef) -> Result<Set> {
        Ok(self.read_relation(access)?.range())
    }

    /// The *dependency mapping* of the paper for one operand: from elements
    /// of the defined array to the elements of the operand array they are
    /// computed from (`write⁻¹ ∘ read`).
    pub fn dependency_mapping(&self, access: &ArrayRef) -> Result<Relation> {
        let w = self.write_relation()?;
        let r = self.read_relation(access)?;
        Ok(w.inverse().compose(&r)?.simplified(true))
    }

    /// The lexicographic schedule components of this statement: alternating
    /// block-position constants and iterator dimensions (the classic `2d+1`
    /// encoding).
    pub fn schedule_components(&self) -> Vec<ScheduleComponent> {
        let mut out = Vec::with_capacity(self.iters.len() * 2 + 1);
        for (level, &c) in self.schedule_consts.iter().enumerate() {
            out.push(ScheduleComponent::Const(c));
            if level < self.iters.len() {
                out.push(ScheduleComponent::Iter(level));
            }
        }
        out
    }

    /// Number of dynamic instances of this statement, when the iteration
    /// domain is bounded (used for operation-count statistics).  Returns
    /// `None` for unbounded or huge domains.
    pub fn instance_count(&self, limit: i64) -> Option<i64> {
        // Count by sampling the bounding box implied by the constraints is
        // expensive; instead walk the concrete loops via the interpreter-side
        // helper when needed.  Here we only handle the 0- and 1-dimensional
        // cases exactly, which is what the statistics need.  Parametric
        // domains have no single count.
        if !self.symbolic_params.is_empty() {
            return None;
        }
        match self.iters.len() {
            0 => Some(1),
            1 => {
                let dom = self.iteration_domain().ok()?;
                let mut count = 0;
                for v in -limit..=limit {
                    if dom.contains(&[v], &[]) {
                        count += 1;
                    }
                }
                Some(count)
            }
            _ => None,
        }
    }

    fn access_relation(&self, indices: &[Affine]) -> Result<Relation> {
        let params = self.param_names();
        let out_names: Vec<String> = (0..indices.len()).map(|d| format!("d{d}")).collect();
        let space = Space::relation(&self.iters, &out_names, &params);
        let mut conjuncts = Vec::new();
        for disjunct in &self.domains {
            let mut c = Conjunct::universe(space.clone());
            for dc in disjunct {
                c.add(lower_domain_constraint(dc, &c, &self.iters, &params));
            }
            self.add_param_bounds(&mut c);
            for (d, a) in indices.iter().enumerate() {
                // out_d - a(iters) = 0
                let mut e = a
                    .to_linexpr(&c, &self.iters, &params, VarKind::In)
                    .scale(-1);
                let col = c.col(VarKind::Out, d);
                e.set_coeff(col, 1);
                c.add(Constraint::eq(e));
            }
            c.simplify();
            conjuncts.push(c);
        }
        Ok(Relation::from_conjuncts(space, conjuncts))
    }
}

/// One component of a statement's lexicographic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleComponent {
    /// A textual-position constant.
    Const(i64),
    /// The iterator at the given nesting level (index into `iters`).
    Iter(usize),
}

fn lower_domain_constraint(
    dc: &DomainConstraint,
    conj: &Conjunct,
    iters: &[String],
    params: &[String],
) -> Constraint {
    match dc {
        DomainConstraint::Geq(a) => Constraint::geq(a.to_linexpr(conj, iters, params, VarKind::In)),
        DomainConstraint::Eq(a) => Constraint::eq(a.to_linexpr(conj, iters, params, VarKind::In)),
        DomainConstraint::Mod(a, m) => {
            Constraint::congruent(a.to_linexpr(conj, iters, params, VarKind::In), *m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{FIG1_A, FIG1_B, FIG1_D};
    use crate::parser::parse_program;

    fn infos(src: &str) -> Vec<StatementInfo> {
        analyze(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn fig1a_statement_s2_dependency_mappings_match_paper() {
        // The paper's Section 3.2 example: for statement s2 of (a),
        // M_{buf,A1} = {[x]->[y] : x = 2k-2, y = 2k-2, 1<=k<=1024}
        // M_{buf,A2} = {[x]->[y] : x = 2k-2, y = k-1,  1<=k<=1024}
        let infos = infos(FIG1_A);
        let s2 = infos.iter().find(|i| i.label == "s2").unwrap();
        let reads: Vec<_> = s2.rhs.reads().into_iter().cloned().collect();
        assert_eq!(reads.len(), 2);
        let m1 = s2.dependency_mapping(&reads[0]).unwrap();
        let m2 = s2.dependency_mapping(&reads[1]).unwrap();
        let expect1 = Relation::parse(
            "{ [x] -> [y] : exists k : x = 2k - 2 and y = 2k - 2 and 1 <= k <= 1024 }",
        )
        .unwrap();
        let expect2 = Relation::parse(
            "{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }",
        )
        .unwrap();
        assert!(m1.is_equal(&expect1).unwrap());
        assert!(m2.is_equal(&expect2).unwrap());
        assert!(!m1.is_equal(&expect2).unwrap());
    }

    #[test]
    fn fig1a_iteration_domains() {
        let infos = infos(FIG1_A);
        let s1 = &infos[0];
        assert_eq!(s1.label, "s1");
        let dom = s1.iteration_domain().unwrap();
        assert!(dom.contains(&[0], &[]));
        assert!(dom.contains(&[1023], &[]));
        assert!(!dom.contains(&[1024], &[]));
        assert!(!dom.contains(&[-1], &[]));
        // Down-counting loop of s2: 1 <= k <= 1024.
        let s2 = &infos[1];
        let dom2 = s2.iteration_domain().unwrap();
        assert!(dom2.contains(&[1], &[]));
        assert!(dom2.contains(&[1024], &[]));
        assert!(!dom2.contains(&[0], &[]));
    }

    #[test]
    fn guarded_statements_get_guard_constraints() {
        let infos = infos(FIG1_B);
        let t3 = infos.iter().find(|i| i.label == "t3").unwrap();
        let d3 = t3.iteration_domain().unwrap();
        assert!(d3.contains(&[0], &[]));
        assert!(d3.contains(&[511], &[]));
        assert!(!d3.contains(&[512], &[]));
        let t4 = infos.iter().find(|i| i.label == "t4").unwrap();
        let d4 = t4.iteration_domain().unwrap();
        assert!(!d4.contains(&[511], &[]));
        assert!(d4.contains(&[512], &[]));
        assert!(d4.contains(&[1023], &[]));
        assert!(!d4.contains(&[1024], &[]));
    }

    #[test]
    fn strided_loops_produce_congruences() {
        let infos = infos(FIG1_D);
        let v1 = infos.iter().find(|i| i.label == "v1").unwrap();
        let d = v1.iteration_domain().unwrap();
        assert!(d.contains(&[0], &[]));
        assert!(d.contains(&[2046], &[]));
        assert!(!d.contains(&[3], &[]));
        assert!(!d.contains(&[2047], &[]));
        let v2 = infos.iter().find(|i| i.label == "v2").unwrap();
        let d2 = v2.iteration_domain().unwrap();
        assert!(d2.contains(&[1], &[]));
        assert!(!d2.contains(&[2], &[]));
    }

    #[test]
    fn write_relations_and_element_sets() {
        let infos = infos(FIG1_A);
        let s2 = &infos[1];
        let w = s2.write_relation().unwrap();
        // k = 1 writes buf[0]; k = 1024 writes buf[2046].
        assert!(w.contains(&[1], &[0], &[]));
        assert!(w.contains(&[1024], &[2046], &[]));
        assert!(!w.contains(&[1], &[1], &[]));
        let elems = s2.write_element_set().unwrap();
        assert!(elems.contains(&[0], &[]));
        assert!(elems.contains(&[2], &[]));
        assert!(!elems.contains(&[1], &[])); // only even elements are written
    }

    #[test]
    fn schedule_components_follow_textual_order() {
        let infos = infos(FIG1_A);
        let s1 = &infos[0];
        let s3 = &infos[2];
        assert_eq!(s1.schedule_consts, vec![0, 0]);
        assert_eq!(s3.schedule_consts, vec![2, 0]);
        assert_eq!(s1.schedule_components().len(), 3);
        assert!(matches!(
            s1.schedule_components()[1],
            ScheduleComponent::Iter(0)
        ));
    }

    #[test]
    fn non_affine_expressions_are_rejected() {
        let src = r#"
void f(int A[], int C[]) {
    int i, j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            C[i*j] = A[i] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        assert!(matches!(analyze(&p), Err(LangError::NotAffine { .. })));
    }

    #[test]
    fn affine_arithmetic_helpers() {
        let defines = BTreeMap::from([("N".to_string(), 8i64)]);
        let iters = vec!["i".to_string()];
        let e = Expr::sub(
            Expr::mul(Expr::Const(2), Expr::var("i")),
            Expr::sub(Expr::var("N"), Expr::Const(1)),
        );
        let a = affine_of_expr(&e, &iters, &[], &defines, "test").unwrap();
        assert_eq!(a.coeffs["i"], 2);
        assert_eq!(a.konst, -7);
        let env = BTreeMap::from([("i".to_string(), 5i64)]);
        assert_eq!(a.eval(&env), 3);
        assert!(Affine::constant(4).is_constant());
    }

    #[test]
    fn parametric_domains_and_instantiation_agree() {
        let p = parse_program(crate::corpus::PARAM_SUM_A).unwrap();
        let infos = analyze(&p).unwrap();
        let a1 = &infos[0];
        assert_eq!(a1.param_names(), vec!["N".to_string()]);
        let dom = a1.iteration_domain().unwrap();
        // 0 <= k < N under the declared context N >= 1.
        assert!(dom.contains(&[0], &[1]));
        assert!(dom.contains(&[9], &[10]));
        assert!(!dom.contains(&[10], &[10]));
        assert!(!dom.contains(&[0], &[0])); // violates the #param bound
        assert_eq!(a1.instance_count(1 << 20), None);

        // Instantiating N gives the same domain with the column gone.
        let inst = p.with_param_values(&[("N".into(), 16)]);
        let dom16 = analyze(&inst).unwrap()[0].iteration_domain().unwrap();
        for k in -2..20 {
            assert_eq!(
                dom16.contains(&[k], &[]),
                dom.contains(&[k], &[16]),
                "k = {k}"
            );
        }
    }

    #[test]
    fn instance_count_for_one_dimensional_statements() {
        let infos = infos(&crate::corpus::with_size(FIG1_A, 16));
        let s1 = &infos[0];
        assert_eq!(s1.instance_count(4096), Some(16));
    }
}
