//! Verification that a program lies in the restricted class of Section 3.1.
//!
//! The parser already rules out `while` loops and pointers syntactically;
//! this module performs the semantic checks that need the affine machinery:
//!
//! * every loop bound, guard and index expression is affine (property ③),
//! * control flow is static (steps are non-zero constants, guards are single
//!   affine comparisons — enforced structurally, re-validated here), and
//! * the program is in **dynamic single-assignment** form (property ①):
//!   no array element is written by two different statement instances.
//!
//! The single-assignment check is exact: for every statement the write
//! relation restricted to its domain must be injective, and the element sets
//! written by different statements to the same array must be disjoint.

use crate::affine::{analyze, StatementInfo};
use crate::ast::Program;
use crate::{LangError, Result};

/// A single violation found by [`check_class`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassViolation {
    /// The statement label(s) involved.
    pub statements: Vec<String>,
    /// Description of the violated property.
    pub message: String,
}

impl std::fmt::Display for ClassViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.statements.join(", "), self.message)
    }
}

/// Result of a program-class check.
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// All violations found (empty when the program is in the class).
    pub violations: Vec<ClassViolation>,
}

impl ClassReport {
    /// Whether the program satisfies every class property that was checked.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the class properties of a program and returns a report listing all
/// violations (rather than stopping at the first).
///
/// # Errors
///
/// Returns an error only when the analysis itself fails (e.g. a non-affine
/// index aborts the affine lowering); violations that can be reported
/// gracefully are collected in the returned [`ClassReport`].
pub fn check_class(program: &Program) -> Result<ClassReport> {
    let infos = analyze(program)?;
    let mut report = ClassReport::default();

    // ① dynamic single assignment.
    check_single_assignment(&infos, &mut report)?;

    // Inputs must not be written; that would silently alias the environment.
    let roles = program.param_roles();
    for info in &infos {
        if let Some(role) = roles.get(&info.target) {
            if *role == crate::ast::ArrayRole::Input {
                report.violations.push(ClassViolation {
                    statements: vec![info.label.clone()],
                    message: format!("input array `{}` is written", info.target),
                });
            }
        }
    }

    // Every written local / output element index must be non-negative for
    // some instance (a cheap sanity check that catches reversed bounds).
    for info in &infos {
        let dom = info.iteration_domain()?;
        if dom.is_empty() {
            report.violations.push(ClassViolation {
                statements: vec![info.label.clone()],
                message: "statement has an empty iteration domain (dead code)".into(),
            });
        }
    }

    Ok(report)
}

/// Convenience wrapper: checks the class and turns any violation into an
/// error, for callers that just need a yes/no gate.
///
/// # Errors
///
/// Returns [`LangError::Class`] listing the violations when the program is
/// outside the class.
pub fn assert_in_class(program: &Program) -> Result<()> {
    let report = check_class(program)?;
    if report.is_ok() {
        Ok(())
    } else {
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        Err(LangError::Class {
            message: rendered.join("; "),
        })
    }
}

fn check_single_assignment(infos: &[StatementInfo], report: &mut ClassReport) -> Result<()> {
    // (1) Within one statement: the write relation must be injective
    //     (different iterations write different elements).
    for info in infos {
        let w = info.write_relation()?;
        // Injective  ⇔  w ∘ w⁻¹ ⊆ Id  over the iteration space.
        let pairs = w.compose(&w.inverse())?;
        let id = arrayeq_omega::Relation::identity(arrayeq_omega::Space::relation(
            &info.iters,
            &info.iters,
            &info.param_names(),
        ));
        if !pairs.is_subset(&id)? {
            report.violations.push(ClassViolation {
                statements: vec![info.label.clone()],
                message: format!(
                    "statement writes the same element of `{}` in different iterations \
                     (not in dynamic single-assignment form)",
                    info.target
                ),
            });
        }
    }
    // (2) Across statements: element sets written to the same array by
    //     different statements must be disjoint.
    for (i, a) in infos.iter().enumerate() {
        for b in infos.iter().skip(i + 1) {
            if a.target != b.target {
                continue;
            }
            let ea = a.write_element_set()?;
            let eb = b.write_element_set()?;
            if !ea.intersect(&eb)?.is_empty() {
                report.violations.push(ClassViolation {
                    statements: vec![a.label.clone(), b.label.clone()],
                    message: format!(
                        "statements both write overlapping elements of `{}` \
                         (not in dynamic single-assignment form)",
                        a.target
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{FIG1_ALL, KERNELS};
    use crate::parser::parse_program;

    #[test]
    fn paper_programs_are_in_the_class() {
        for (name, src) in FIG1_ALL {
            let p = parse_program(src).unwrap();
            let report = check_class(&p).unwrap();
            assert!(
                report.is_ok(),
                "fig1({name}) should be in the class, got {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn kernel_suite_is_in_the_class() {
        for (name, src) in KERNELS {
            let p = parse_program(src).unwrap();
            let report = check_class(&p).unwrap();
            assert!(
                report.is_ok(),
                "kernel {name} should be in the class, got {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn double_write_is_reported() {
        // Both statements write C[0..3]: not single assignment.
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < 4; k++)
s1:     C[k] = A[k] + 1;
    for (k = 0; k < 4; k++)
s2:     C[k] = A[k] + 2;
}
"#;
        let p = parse_program(src).unwrap();
        let report = check_class(&p).unwrap();
        assert!(!report.is_ok());
        assert!(report.violations.iter().any(|v| {
            v.statements == vec!["s1".to_string(), "s2".to_string()]
                && v.message.contains("single-assignment")
        }));
        assert!(assert_in_class(&p).is_err());
    }

    #[test]
    fn non_injective_single_statement_write_is_reported() {
        // C[k/2] would be non-affine; use C[0] written in every iteration.
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < 4; k++)
s1:     C[0] = A[k] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        let report = check_class(&p).unwrap();
        assert!(!report.is_ok());
        assert!(report.violations[0]
            .message
            .contains("different iterations"));
    }

    #[test]
    fn writing_an_input_is_reported() {
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < 4; k++)
s1:     C[k] = A[k] + 1;
    for (k = 4; k < 8; k++)
s2:     A[k] = C[k - 4] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        let report = check_class(&p).unwrap();
        // A is both read and written: role is Intermediate, not Input, so the
        // input-write rule does not fire; but the program is still accepted
        // only if single assignment holds, which it does here.
        assert!(report.is_ok());
        // A genuinely write-only parameter that is also read nowhere would be
        // an output, so the "input written" rule fires only when a parameter
        // is read before being (also) written — covered by def-use instead.
    }

    #[test]
    fn empty_domain_is_flagged_as_dead_code() {
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 10; k < 4; k++)
s1:     C[k] = A[k] + 1;
}
"#;
        let p = parse_program(src).unwrap();
        let report = check_class(&p).unwrap();
        assert!(!report.is_ok());
        assert!(report.violations[0]
            .message
            .contains("empty iteration domain"));
    }
}
