//! Abstract syntax tree for the restricted program class.

use std::collections::BTreeMap;
use std::fmt;

/// A comparison operator used in loop conditions and `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The operator comparing the same operands in the opposite order
    /// (e.g. `<` becomes `>`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The logical negation (e.g. `<` becomes `>=`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Evaluates the comparison on concrete values.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A binary arithmetic operator appearing in right-hand sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// An array access `A[i][2*j + 1]`.  Scalars are modelled as arrays with an
/// empty index list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The array (or scalar) name.
    pub array: String,
    /// One index expression per dimension.
    pub indices: Vec<Expr>,
}

impl ArrayRef {
    /// Convenience constructor.
    pub fn new(array: impl Into<String>, indices: Vec<Expr>) -> Self {
        ArrayRef {
            array: array.into(),
            indices,
        }
    }
}

/// An expression appearing on the right-hand side of an assignment or inside
/// an index / bound / condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable reference (loop iterator or `#define` constant).
    Var(String),
    /// Array element read.
    Access(ArrayRef),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Call of an (uninterpreted or user-declared) pure function.
    Call(String, Vec<Expr>),
}

// The `add`/`sub`/`mul` names mirror the operator being built; they are
// two-operand static constructors, not `self`-taking arithmetic, so the
// std operator traits do not fit.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `lhs + rhs`
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs - rhs`
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs * rhs`
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }
    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }
    /// A 1-D array access.
    pub fn access1(array: impl Into<String>, index: Expr) -> Expr {
        Expr::Access(ArrayRef::new(array, vec![index]))
    }

    /// All array reads occurring in this expression, left to right.
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Access(a) => out.push(a),
            Expr::Bin(_, l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
            Expr::Neg(e) => e.collect_reads(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_reads(out);
                }
            }
        }
    }

    /// Number of binary-operator applications in the expression (a simple
    /// size measure used by the operation-count statistics).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Access(_) => 0,
            Expr::Bin(_, l, r) => 1 + l.op_count() + r.op_count(),
            Expr::Neg(e) => e.op_count(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::op_count).sum::<usize>(),
        }
    }
}

/// A single comparison `lhs op rhs` used as a loop condition or `if` guard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Left-hand operand.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand operand.
    pub rhs: Expr,
}

impl Cond {
    /// Convenience constructor.
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Self {
        Cond { lhs, op, rhs }
    }
}

/// A `for` loop with affine bounds and a constant step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct For {
    /// The iterator variable.
    pub var: String,
    /// Initial value of the iterator.
    pub init: Expr,
    /// Loop-continuation condition (`var op bound`).
    pub cond: Cond,
    /// Constant step added each iteration (negative for down-counting loops).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// An `if`/`else` statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct If {
    /// The guard condition.
    pub cond: Cond,
    /// Statements executed when the guard holds.
    pub then_branch: Vec<Stmt>,
    /// Statements executed when the guard does not hold (possibly empty).
    pub else_branch: Vec<Stmt>,
}

/// A labelled assignment `label: A[f(i)] = rhs;`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assign {
    /// The statement label (`s1`, `t3`, ...).  Labels are generated when the
    /// source text does not provide one.
    pub label: String,
    /// The defined array element.
    pub lhs: ArrayRef,
    /// The computed value.
    pub rhs: Expr,
}

/// A statement of the restricted language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// A `for` loop.
    For(For),
    /// An `if`/`else`.
    If(If),
    /// A labelled assignment.
    Assign(Assign),
}

/// How an array parameter is used by the function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayRole {
    /// Only read: an input of the function.
    Input,
    /// Only written: an output of the function.
    Output,
    /// Both read and written (allowed only for locals in the class).
    Intermediate,
}

/// A local array (or scalar) declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Declared sizes, one per dimension; empty for scalars (iterators).
    pub dims: Vec<Expr>,
}

/// A complete program function in the restricted class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Function name.
    pub name: String,
    /// `#define` constants, in declaration order.
    pub defines: BTreeMap<String, i64>,
    /// Array parameter names, in declaration order.
    pub params: Vec<String>,
    /// Symbolic size parameters (`#param N >= 1`): name and declared lower
    /// bound.  Unlike `defines`, these have no concrete value — loop bounds
    /// and index expressions over them stay symbolic all the way into the
    /// omega layer, so one verification covers every admissible value.
    pub symbolic_params: Vec<(String, i64)>,
    /// Local declarations (iterators and intermediate arrays).
    pub decls: Vec<Decl>,
    /// Function body.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Iterates over all assignment statements in program (textual) order.
    pub fn statements(&self) -> impl Iterator<Item = &Assign> {
        fn walk<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a Assign>) {
            for s in stmts {
                match s {
                    Stmt::Assign(a) => out.push(a),
                    Stmt::For(f) => walk(&f.body, out),
                    Stmt::If(i) => {
                        walk(&i.then_branch, out);
                        walk(&i.else_branch, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out.into_iter()
    }

    /// Looks up an assignment by its label.
    pub fn statement(&self, label: &str) -> Option<&Assign> {
        self.statements().find(|a| a.label == label)
    }

    /// All array names written anywhere in the function.
    pub fn written_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in self.statements() {
            if !out.contains(&a.lhs.array) {
                out.push(a.lhs.array.clone());
            }
        }
        out
    }

    /// All array names read anywhere in the function.
    pub fn read_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in self.statements() {
            for r in a.rhs.reads() {
                if !out.contains(&r.array) {
                    out.push(r.array.clone());
                }
            }
        }
        out
    }

    /// The role each array parameter plays (input / output / intermediate),
    /// inferred from its uses, as the paper does for the `foo` examples.
    pub fn param_roles(&self) -> BTreeMap<String, ArrayRole> {
        let written = self.written_arrays();
        let read = self.read_arrays();
        let mut roles = BTreeMap::new();
        for p in &self.params {
            let w = written.contains(p);
            let r = read.contains(p);
            let role = match (w, r) {
                (true, false) => ArrayRole::Output,
                (false, _) => ArrayRole::Input,
                (true, true) => ArrayRole::Intermediate,
            };
            roles.insert(p.clone(), role);
        }
        roles
    }

    /// The parameters that act as inputs (only read).
    pub fn input_arrays(&self) -> Vec<String> {
        self.param_roles()
            .into_iter()
            .filter(|(_, r)| *r == ArrayRole::Input)
            .map(|(n, _)| n)
            .collect()
    }

    /// The parameters that act as outputs (written).
    pub fn output_arrays(&self) -> Vec<String> {
        self.param_roles()
            .into_iter()
            .filter(|(_, r)| matches!(r, ArrayRole::Output | ArrayRole::Intermediate))
            .map(|(n, _)| n)
            .collect()
    }

    /// Local arrays holding intermediate values (declared locally and both
    /// written and read, such as `tmp[]` and `buf[]` in Fig. 1).
    pub fn intermediate_arrays(&self) -> Vec<String> {
        self.decls
            .iter()
            .filter(|d| !d.dims.is_empty())
            .map(|d| d.name.clone())
            .collect()
    }

    /// The value of a `#define` constant, if present.
    pub fn define(&self, name: &str) -> Option<i64> {
        self.defines.get(name).copied()
    }

    /// The declared lower bound of a symbolic parameter, if present.
    pub fn symbolic_param(&self, name: &str) -> Option<i64> {
        self.symbolic_params
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, min)| min)
    }

    /// A concrete instantiation of this program: every symbolic parameter is
    /// replaced by the given value (turned into a `#define`).  Used by the
    /// interpreter and by the concrete sweeps that cross-check parametric
    /// verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not assign exactly the symbolic parameters.
    pub fn with_param_values(&self, values: &[(String, i64)]) -> Program {
        assert_eq!(
            values.len(),
            self.symbolic_params.len(),
            "instantiation must assign every symbolic parameter"
        );
        let mut out = self.clone();
        for (name, value) in values {
            assert!(
                self.symbolic_param(name).is_some(),
                "no symbolic parameter named `{name}`"
            );
            out.defines.insert(name.clone(), *value);
        }
        out.symbolic_params.clear();
        out
    }

    /// Total number of assignment statements.
    pub fn statement_count(&self) -> usize {
        self.statements().count()
    }
}

/// Fluent builder for constructing [`Program`]s programmatically — used by
/// the transformation engine and the synthetic-kernel generators, which need
/// to produce many program variants without going through text.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    defines: BTreeMap<String, i64>,
    params: Vec<String>,
    symbolic_params: Vec<(String, i64)>,
    decls: Vec<Decl>,
    body: Vec<Stmt>,
    label_counter: usize,
}

impl ProgramBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a `#define` constant.
    pub fn define(mut self, name: impl Into<String>, value: i64) -> Self {
        self.defines.insert(name.into(), value);
        self
    }

    /// Adds an array parameter.
    pub fn param(mut self, name: impl Into<String>) -> Self {
        self.params.push(name.into());
        self
    }

    /// Adds a symbolic size parameter (`#param name >= min`).
    pub fn symbolic_param(mut self, name: impl Into<String>, min: i64) -> Self {
        self.symbolic_params.push((name.into(), min));
        self
    }

    /// Adds a local declaration.
    pub fn decl(mut self, name: impl Into<String>, dims: Vec<Expr>) -> Self {
        self.decls.push(Decl {
            name: name.into(),
            dims,
        });
        self
    }

    /// Appends a statement to the function body.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Generates a fresh statement label (`g0`, `g1`, ...).
    pub fn fresh_label(&mut self) -> String {
        let l = format!("g{}", self.label_counter);
        self.label_counter += 1;
        l
    }

    /// Finishes building.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            defines: self.defines,
            params: self.params,
            symbolic_params: self.symbolic_params,
            decls: self.decls,
            body: self.body,
        }
    }
}

/// Builds a simple counted loop `for (var = lo; var < hi; var += step)`.
pub fn simple_for(var: &str, lo: i64, hi: i64, step: i64, body: Vec<Stmt>) -> Stmt {
    Stmt::For(For {
        var: var.to_owned(),
        init: Expr::Const(lo),
        cond: Cond::new(Expr::var(var), CmpOp::Lt, Expr::Const(hi)),
        step,
        body,
    })
}

/// Builds a labelled 1-D assignment `label: target[idx] = rhs;`.
pub fn assign1(label: &str, target: &str, idx: Expr, rhs: Expr) -> Stmt {
    Stmt::Assign(Assign {
        label: label.to_owned(),
        lhs: ArrayRef::new(target, vec![idx]),
        rhs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        // for (k = 0; k < 4; k++) s1: C[k] = A[k] + B[2k];
        ProgramBuilder::new("foo")
            .define("N", 4)
            .param("A")
            .param("B")
            .param("C")
            .decl("k", vec![])
            .stmt(simple_for(
                "k",
                0,
                4,
                1,
                vec![assign1(
                    "s1",
                    "C",
                    Expr::var("k"),
                    Expr::add(
                        Expr::access1("A", Expr::var("k")),
                        Expr::access1("B", Expr::mul(Expr::Const(2), Expr::var("k"))),
                    ),
                )],
            ))
            .build()
    }

    #[test]
    fn statements_are_enumerated_in_order() {
        let p = tiny_program();
        let labels: Vec<&str> = p.statements().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, vec!["s1"]);
        assert!(p.statement("s1").is_some());
        assert!(p.statement("zz").is_none());
        assert_eq!(p.statement_count(), 1);
    }

    #[test]
    fn roles_are_inferred_from_uses() {
        let p = tiny_program();
        let roles = p.param_roles();
        assert_eq!(roles["A"], ArrayRole::Input);
        assert_eq!(roles["B"], ArrayRole::Input);
        assert_eq!(roles["C"], ArrayRole::Output);
        assert_eq!(p.input_arrays(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(p.output_arrays(), vec!["C".to_string()]);
    }

    #[test]
    fn reads_are_collected_left_to_right() {
        let p = tiny_program();
        let s1 = p.statement("s1").unwrap();
        let reads: Vec<&str> = s1.rhs.reads().iter().map(|r| r.array.as_str()).collect();
        assert_eq!(reads, vec!["A", "B"]);
        // Only the value-level `+` counts; the `2*k` inside the index does not.
        assert_eq!(s1.rhs.op_count(), 1);
    }

    #[test]
    fn op_count_counts_rhs_operators_only_at_value_level() {
        // (A[k] + B[k]) + C[k] has two adds.
        let e = Expr::add(
            Expr::add(
                Expr::access1("A", Expr::var("k")),
                Expr::access1("B", Expr::var("k")),
            ),
            Expr::access1("C", Expr::var("k")),
        );
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn cmp_op_helpers() {
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert!(CmpOp::Le.eval(3, 3));
        assert!(!CmpOp::Lt.eval(3, 3));
        assert!(CmpOp::Ne.eval(1, 2));
        assert_eq!(format!("{}", CmpOp::Ge), ">=");
    }

    #[test]
    fn define_lookup_and_intermediates() {
        let p = ProgramBuilder::new("f")
            .define("N", 16)
            .param("A")
            .param("C")
            .decl("k", vec![])
            .decl("tmp", vec![Expr::Const(16)])
            .build();
        assert_eq!(p.define("N"), Some(16));
        assert_eq!(p.define("M"), None);
        assert_eq!(p.intermediate_arrays(), vec!["tmp".to_string()]);
    }
}
