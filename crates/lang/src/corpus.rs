//! Source-text corpus: the four program versions of Fig. 1 of the paper and
//! a small library of signal-processing-style kernels used as the "realistic
//! examples" of Section 6.2.
//!
//! All programs are in the restricted class of Section 3.1 (dynamic single
//! assignment, static affine control, affine indices, no pointers).  The
//! `fig1_*` constants are verbatim transcriptions of the paper's figure,
//! including the erroneous version (d); the kernels are parameterised by
//! `N` through their `#define` so the benchmark harness can rewrite the size.

/// Fig. 1(a): the original function.
///
/// Computes `C[k] = B[2k] + B[k] + A[2k] + A[k]` for `k ∈ [0, N)` through two
/// intermediate arrays `tmp` and `buf`.
pub const FIG1_A: &str = r#"
/* Original function */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[2*N];
    for(k=0; k<N; k++)
s1:  tmp[k] = B[2*k] + B[k];
    for(k=N; k>=1; k--)
s2:  buf[2*k-2] = A[2*k-2]
                       + A[k-1];
    for(k=0; k<N; k++)
s3:  C[k] = tmp[k] + buf[2*k];
}
"#;

/// Fig. 1(b): transformed version 1 — expression propagation (the `t4`
/// branch recomputes `tmp`'s value inline) plus loop transformations (bound
/// split at 512, loop fusion, reversal undone).
pub const FIG1_B: &str = r#"
/* Transformed function ver 1 */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[N];
    for(k=0; k<512; k++)
t1:  tmp[k] = B[2*k] + B[k];
    for(k=0; k<N; k++){
t2:  buf[k] = A[2*k] + A[k];
     if (k < 512)
t3:    C[k] = tmp[k] + buf[k];
     else
t4:    C[k] = (B[2*k] + B[k])
                      + buf[k];
    }
}
"#;

/// Fig. 1(c): transformed version 2 — additionally applies *algebraic*
/// transformations (re-association/commutation of the additions), saving
/// N/2 additions with respect to (a) and (b).
pub const FIG1_C: &str = r#"
/* Transformed function ver 2 */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, buf[2*N];
    for(k=0; k<N; k++)
u1:  buf[k] = A[k] + B[k];
    for(k=N; k<=2*N-2; k+=2)
u2:  buf[k] = A[k] + B[k];
    for(k=0; k<N; k++)
u3:  C[k] = buf[k] + buf[2*k];
}
"#;

/// Fig. 1(d): transformed version 3 — an *erroneous* transformation.  For
/// even `k` it computes `A[k] + B[k] + A[k] + B[k]` instead of the intended
/// value (statement `v3` should read `buf[2*k]`), while for odd `k` it is
/// still correct.  The checker must report inequivalence and point at
/// statements `v3`/`v1` and the index expression of `buf`.
pub const FIG1_D: &str = r#"
/* Transformed function ver 3 */
#define N 1024
foo(int A[], int B[], int C[])
{
    int k, tmp[N], buf[2*N];
    for(k=0; k<=2*N-2; k+=2)
v1:  buf[k] = A[k] + B[k];
    for(k=1; k<N; k+=2)
v2:  tmp[k] = A[k] + B[k];
    for(k=0; k<N-1; k+=2){
v3:  C[k] = buf[k] + buf[k];
v4:  C[k+1] = tmp[k+1]
                 + buf[2*k+2];
    }
}
"#;

/// The four Fig. 1 versions in order (a), (b), (c), (d) with their names.
pub const FIG1_ALL: [(&str, &str); 4] =
    [("a", FIG1_A), ("b", FIG1_B), ("c", FIG1_C), ("d", FIG1_D)];

/// A 5-tap FIR filter in single-assignment form (fully unrolled taps).
pub const KERNEL_FIR5: &str = r#"
/* 5-tap FIR filter, expanded accumulator (single assignment) */
#define N 256
fir(int X[], int H[], int Y[])
{
    int k;
    for (k = 0; k < N; k++)
f1:     Y[k] = ((((X[k] * H[0]) + (X[k+1] * H[1])) + (X[k+2] * H[2]))
                + (X[k+3] * H[3])) + (X[k+4] * H[4]);
}
"#;

/// A 3x3 2-D convolution over an image with explicit 2-D indexing, expanded
/// accumulator (the kernel-coefficient array `K` stays 1-D).
pub const KERNEL_CONV2D: &str = r#"
/* 3x3 convolution over a 2-D image */
#define N 64
conv2d(int IMG[][], int K[], int OUT[][])
{
    int i, j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
c1:         OUT[i][j] =
                ((((((((IMG[i][j] * K[0]) + (IMG[i][j + 1] * K[1]))
                + (IMG[i][j + 2] * K[2])) + (IMG[i + 1][j] * K[3]))
                + (IMG[i + 1][j + 1] * K[4])) + (IMG[i + 1][j + 2] * K[5]))
                + (IMG[i + 2][j] * K[6])) + (IMG[i + 2][j + 1] * K[7]))
                + (IMG[i + 2][j + 2] * K[8]);
}
"#;

/// A factor-2 downsampler followed by a smoothing pass, using an intermediate
/// buffer (two statements, strided access).
pub const KERNEL_DOWNSAMPLE: &str = r#"
/* downsample by 2 then smooth */
#define N 128
down(int X[], int Y[])
{
    int k, mid[N];
    for (k = 0; k < N; k++)
d1:     mid[k] = X[2*k] + X[2*k + 1];
    for (k = 0; k < N - 1; k++)
d2:     Y[k] = mid[k] + mid[k + 1];
}
"#;

/// One lifting step of an integer wavelet transform (predict + update),
/// operating on even/odd subsequences.
pub const KERNEL_LIFTING: &str = r#"
/* wavelet lifting step: predict (detail) and update (approximation) */
#define N 128
lift(int X[], int D[], int S[])
{
    int k;
    for (k = 0; k < N; k++)
l1:     D[k] = X[2*k + 1] - X[2*k];
    for (k = 0; k < N; k++)
l2:     S[k] = X[2*k] + D[k];
}
"#;

/// A sum-of-absolute-differences style tree for motion estimation, with the
/// absolute value replaced by an uninterpreted function `absd` (kept
/// uninterpreted by the checker, exactly like a designer-declared operator).
pub const KERNEL_SAD_TREE: &str = r#"
/* block matching metric tree over 4-pixel groups */
#define N 64
sad(int CUR[], int REF[], int M[])
{
    int k, p[N];
    for (k = 0; k < N; k++)
m1:     p[k] = absd(CUR[4*k], REF[4*k]) + absd(CUR[4*k+1], REF[4*k+1]);
    for (k = 0; k < N; k++)
m2:     M[k] = p[k] + (absd(CUR[4*k+2], REF[4*k+2]) + absd(CUR[4*k+3], REF[4*k+3]));
}
"#;

/// A 4x4 matrix-vector product with the accumulation expanded so the program
/// stays in single-assignment form.
pub const KERNEL_MATVEC: &str = r#"
/* 4-wide matrix-vector product, expanded accumulation */
#define N 64
matvec(int A[], int X[], int Y[])
{
    int i;
    for (i = 0; i < N; i++)
v1:     Y[i] = ((A[4*i] * X[0] + A[4*i+1] * X[1]) + A[4*i+2] * X[2])
               + A[4*i+3] * X[3];
}
"#;

/// A first-order recurrence (prefix-style IIR filter) — exercises the cyclic
/// ADDG / transitive-closure path of the method.
pub const KERNEL_RECURRENCE: &str = r#"
/* first-order recurrence: running sum */
#define N 128
scan(int X[], int Y[])
{
    int k;
r0: Y[0] = X[0] + 0;
    for (k = 1; k < N; k++)
r1:     Y[k] = Y[k-1] + X[k];
}
"#;

/// A *factored* weighted blend: a gain multiplies a piecewise sum held in
/// an intermediate buffer.  Equivalent to [`KERNEL_EXPANDED`] only through
/// one-level distribution of `*` over `+`/`-` (plus inverse folding on the
/// upper half) — the extended method with the full operator algebra proves
/// the pair; the basic method and plain AC matching cannot.
pub const KERNEL_FACTORED: &str = r#"
/* factored weighted blend: gain times a piecewise sum */
#define N 64
#define H 32
blend(int A[], int B[], int G[], int C[])
{
    int k, s[N];
    for (k = 0; k < H; k++)
b1:     s[k] = A[k] + B[2*k];
    for (k = H; k < N; k++)
b2:     s[k] = A[k] - B[2*k];
    for (k = 0; k < N; k++)
b3:     C[k] = G[k] * s[k];
}
"#;

/// The distributed/expanded form of [`KERNEL_FACTORED`]: the gain is
/// multiplied through each summand, per half of the output domain.
pub const KERNEL_EXPANDED: &str = r#"
/* expanded weighted blend: gain distributed over each summand */
#define N 64
#define H 32
blend(int A[], int B[], int G[], int C[])
{
    int k;
    for (k = 0; k < H; k++)
e1:     C[k] = G[k] * A[k] + G[k] * B[2*k];
    for (k = H; k < N; k++)
e2:     C[k] = G[k] * A[k] - G[k] * B[2*k];
}
"#;

/// A difference-and-sum chain computed through an intermediate: the `-`
/// rides inside the first statement.  Equivalent to
/// [`KERNEL_SUB_SHUFFLE_B`] only when subtraction folds into the `+` chain
/// with a negated coefficient (inverse folding).
pub const KERNEL_SUB_SHUFFLE_A: &str = r#"
/* difference plus correction, staged through a temporary */
#define N 64
diffsum(int X[], int Y[], int Z[], int C[])
{
    int k, t[N];
    for (k = 0; k < N; k++)
q1:     t[k] = X[k] - Y[2*k];
    for (k = 0; k < N; k++)
q2:     C[k] = t[k] + Z[k];
}
"#;

/// The shuffled single-statement form of [`KERNEL_SUB_SHUFFLE_A`]: the
/// subtraction moved to the end of the chain.
pub const KERNEL_SUB_SHUFFLE_B: &str = r#"
/* same chain, subtraction last */
#define N 64
diffsum(int X[], int Y[], int Z[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
p1:     C[k] = X[k] + Z[k] - Y[2*k];
}
"#;

/// A chain littered with identity operands and split constants.  Equivalent
/// to [`KERNEL_IDENT_B`] only through identity elimination (`+ 0`, `* 1`)
/// and constant folding (`2 + 3` = `5`).
pub const KERNEL_IDENT_A: &str = r#"
/* identity noise and split constants */
#define N 64
bias(int X[], int Y[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
i1:     C[k] = X[k] + 0 + Y[2*k] * 1 + 2 + 3;
}
"#;

/// The folded form of [`KERNEL_IDENT_A`].
pub const KERNEL_IDENT_B: &str = r#"
/* folded constants, no identities */
#define N 64
bias(int X[], int Y[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
j1:     C[k] = 5 + Y[2*k] + X[k];
}
"#;

/// A piecewise-assembled sum: the intermediate is written in two halves
/// split at `H`, the upper half with shuffled operands.  Equivalent to
/// [`KERNEL_PIECEWISE_B`], which assembles the *same* values split at a
/// different point `Q` — so one flatten/match obligation spans three
/// regions (`0..Q`, `Q..H`, `H..N`) with different term structures, the
/// workload that exercises region splitting (and the parallel checker's
/// per-piece task decomposition) inside a single chain.
pub const KERNEL_PIECEWISE_A: &str = r#"
/* piecewise-assembled sum, split at H, upper half shuffled */
#define N 64
#define H 32
pieces(int A[], int B[], int D[], int C[])
{
    int k, w[N];
    for (k = 0; k < H; k++)
w1:     w[k] = B[k] + D[2*k];
    for (k = H; k < N; k++)
w2:     w[k] = D[2*k] + B[k];
    for (k = 0; k < N; k++)
c1:     C[k] = A[k] + w[k];
}
"#;

/// The same values as [`KERNEL_PIECEWISE_A`], assembled with a different
/// split point and operand orders.
pub const KERNEL_PIECEWISE_B: &str = r#"
/* same sum, split at Q instead */
#define N 64
#define Q 16
pieces(int A[], int B[], int D[], int C[])
{
    int k, v[N];
    for (k = 0; k < Q; k++)
x1:     v[k] = D[2*k] + B[k];
    for (k = Q; k < N; k++)
x2:     v[k] = B[k] + D[2*k];
    for (k = 0; k < N; k++)
y1:     C[k] = v[k] + A[k];
}
"#;

/// A factored chain with an identity operand in one statement — the
/// fault-injection harness's host for distribution- and identity-breaking
/// mutations (`transform::mutate`).
pub const KERNEL_FACTORED_IDENT: &str = r#"
/* factored gain with an identity tail */
#define N 64
fblend(int A[], int B[], int G[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
f1:     C[k] = G[k] * (A[k] + B[2*k]) + 0;
}
"#;

/// A staged sum with the problem size left *symbolic* (`#param N >= 1`):
/// no concrete value of `N` appears anywhere, so every space built from the
/// program carries an `N` parameter column and one verification covers all
/// admissible sizes.  Equivalent to [`PARAM_SUM_B`] under copy propagation
/// and re-association.
pub const PARAM_SUM_A: &str = r#"
/* parametric staged sum */
#param N >= 1
psum(int A[], int B[], int C[])
{
    int k, t[N];
    for (k = 0; k < N; k++)
a1:     t[k] = A[k] + B[2*k];
    for (k = 0; k < N; k++)
a2:     C[k] = t[k] + A[2*k];
}
"#;

/// The fused, re-associated form of [`PARAM_SUM_A`], over the same symbolic
/// size.
pub const PARAM_SUM_B: &str = r#"
/* same parametric sum, fused and shuffled */
#param N >= 1
psum(int A[], int B[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
b1:     C[k] = A[2*k] + (A[k] + B[2*k]);
}
"#;

/// A parametric pair with a *split* intermediate: the lower half up to a
/// fixed pivot, the rest up to the symbolic bound.  Exercises parameter
/// columns inside piecewise domains (`0 <= k < 8` vs `8 <= k < N`).
pub const PARAM_SPLIT_A: &str = r#"
/* parametric piecewise sum, split at 8 */
#param N >= 16
pieces(int A[], int B[], int C[])
{
    int k, w[N];
    for (k = 0; k < 8; k++)
w1:     w[k] = A[k] + B[2*k];
    for (k = 8; k < N; k++)
w2:     w[k] = B[2*k] + A[k];
    for (k = 0; k < N; k++)
c1:     C[k] = w[k];
}
"#;

/// The single-loop form of [`PARAM_SPLIT_A`].
pub const PARAM_SPLIT_B: &str = r#"
/* same parametric sum, no split */
#param N >= 16
pieces(int A[], int B[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
d1:     C[k] = A[k] + B[2*k];
}
"#;

/// The parametric scenario pairs: `(name, original, transformed)`, each
/// equivalent for *every* admissible value of its `#param` size.  Concrete
/// sweeps instantiate them via [`crate::ast::Program::with_param_values`].
pub const PARAMETRIC_PAIRS: [(&str, &str, &str); 2] = [
    ("param-sum", PARAM_SUM_A, PARAM_SUM_B),
    ("param-split", PARAM_SPLIT_A, PARAM_SPLIT_B),
];

/// The algebraic-normalization scenario pairs: `(name, original,
/// transformed)`, equivalent exactly under the extended method's widened
/// operator algebra (distribution, inverse folding, identity/constant
/// folding).  Kept separate from [`KERNELS`] (whose members pair with
/// random transformation pipelines); these pairs *are* the transformation.
pub const ALGEBRAIC_PAIRS: [(&str, &str, &str); 4] = [
    ("factored-expanded", KERNEL_FACTORED, KERNEL_EXPANDED),
    ("sub-shuffle", KERNEL_SUB_SHUFFLE_A, KERNEL_SUB_SHUFFLE_B),
    ("ident-fold", KERNEL_IDENT_A, KERNEL_IDENT_B),
    ("piecewise", KERNEL_PIECEWISE_A, KERNEL_PIECEWISE_B),
];

/// Names and sources of the realistic-kernel suite (Section 6.2 workload).
pub const KERNELS: [(&str, &str); 7] = [
    ("fir5", KERNEL_FIR5),
    ("conv2d", KERNEL_CONV2D),
    ("downsample", KERNEL_DOWNSAMPLE),
    ("lifting", KERNEL_LIFTING),
    ("sad_tree", KERNEL_SAD_TREE),
    ("matvec", KERNEL_MATVEC),
    ("recurrence", KERNEL_RECURRENCE),
];

/// Rewrites the `#define N <value>` line of a corpus program, so benchmarks
/// can sweep the problem size without string surgery at every call site.
pub fn with_size(src: &str, n: i64) -> String {
    let mut out = String::with_capacity(src.len());
    for line in src.lines() {
        if line.trim_start().starts_with("#define N ") {
            out.push_str(&format!("#define N {n}\n"));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn all_fig1_versions_parse() {
        for (name, src) in FIG1_ALL {
            let p = parse_program(src).unwrap_or_else(|e| panic!("fig1({name}) parse: {e}"));
            assert_eq!(p.name, "foo");
            assert_eq!(p.params, vec!["A", "B", "C"]);
        }
    }

    #[test]
    fn all_kernels_parse() {
        for (name, src) in KERNELS {
            let p = parse_program(src).unwrap_or_else(|e| panic!("kernel {name} parse: {e}"));
            assert!(p.statement_count() >= 1, "kernel {name} has statements");
        }
    }

    #[test]
    fn algebraic_pairs_parse_with_matching_interfaces() {
        for (name, a, b) in ALGEBRAIC_PAIRS {
            let pa = parse_program(a).unwrap_or_else(|e| panic!("{name} original: {e}"));
            let pb = parse_program(b).unwrap_or_else(|e| panic!("{name} transformed: {e}"));
            assert_eq!(pa.output_arrays(), pb.output_arrays(), "{name}");
            assert_eq!(pa.input_arrays(), pb.input_arrays(), "{name}");
        }
        parse_program(KERNEL_FACTORED_IDENT).expect("mutation host parses");
    }

    #[test]
    fn parametric_pairs_parse_with_symbolic_sizes() {
        for (name, a, b) in PARAMETRIC_PAIRS {
            let pa = parse_program(a).unwrap_or_else(|e| panic!("{name} original: {e}"));
            let pb = parse_program(b).unwrap_or_else(|e| panic!("{name} transformed: {e}"));
            assert_eq!(pa.symbolic_params, pb.symbolic_params, "{name}");
            assert_eq!(pa.symbolic_params.len(), 1, "{name}");
            assert_eq!(pa.symbolic_params[0].0, "N", "{name}");
            assert_eq!(pa.output_arrays(), pb.output_arrays(), "{name}");
            // Instantiation turns the param into an ordinary define.
            let inst = pa.with_param_values(&[("N".into(), 32)]);
            assert!(inst.symbolic_params.is_empty());
            assert_eq!(inst.define("N"), Some(32));
        }
    }

    #[test]
    fn param_directive_grammar() {
        let p = parse_program("#param N >= 4\nf(int A[], int C[]) { int k; for (k = 0; k < N; k++) s1: C[k] = A[k]; }").unwrap();
        assert_eq!(p.symbolic_param("N"), Some(4));
        // The bound defaults to 1 when omitted.
        let q = parse_program(
            "#param M\nf(int A[], int C[]) { int k; for (k = 0; k < M; k++) s1: C[k] = A[k]; }",
        )
        .unwrap();
        assert_eq!(q.symbolic_param("M"), Some(1));
        // Round-trips through the pretty-printer.
        let text = crate::pretty::program_to_string(&p);
        assert!(text.contains("#param N >= 4"));
        assert_eq!(parse_program(&text).unwrap(), p);
    }

    #[test]
    fn with_size_rewrites_the_define() {
        let resized = with_size(FIG1_A, 16);
        let p = parse_program(&resized).unwrap();
        assert_eq!(p.define("N"), Some(16));
        // Other lines are untouched.
        assert!(resized.contains("s3:  C[k] = tmp[k] + buf[2*k];"));
    }
}
