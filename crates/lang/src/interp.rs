//! Reference interpreter (the "simulation" baseline of the paper's intro).
//!
//! The paper motivates equivalence checking by the cost and incompleteness of
//! simulating the transformed program on test vectors.  This module provides
//! that simulation: it executes a program of the restricted class on concrete
//! input arrays and returns the values of its output arrays.  It is used
//!
//! * as the baseline whose runtime is compared against the checker in the
//!   scaling experiments (the checker's cost is independent of the loop
//!   bounds, simulation's is linear in them), and
//! * as a test oracle: programs the checker proves equivalent must produce
//!   identical outputs on random inputs, and programs it rejects with a
//!   concrete failing domain must differ somewhere in that domain.
//!
//! Uninterpreted function calls (`absd(...)`, `clip(...)`, ...) are executed
//! with a deterministic hash-mixing semantics so that two programs agree on a
//! call iff they agree on the function name and argument values — exactly the
//! congruence the checker assumes.

use crate::ast::*;
use crate::{LangError, Result};
use std::collections::BTreeMap;

/// Concrete values for the input arrays of a program, plus sizes for its
/// output arrays.
#[derive(Debug, Clone, Default)]
pub struct Inputs {
    /// Values of each input array, indexed by flat element offset.
    pub arrays: BTreeMap<String, Vec<i64>>,
    /// Number of elements to allocate for output / intermediate parameter
    /// arrays that are not listed in [`Inputs::arrays`].
    pub output_sizes: BTreeMap<String, usize>,
}

impl Inputs {
    /// Creates an empty input environment.
    pub fn new() -> Self {
        Inputs::default()
    }

    /// Sets the contents of an input array.
    pub fn array(mut self, name: impl Into<String>, values: Vec<i64>) -> Self {
        self.arrays.insert(name.into(), values);
        self
    }

    /// Declares the size of an output array.
    pub fn output(mut self, name: impl Into<String>, size: usize) -> Self {
        self.output_sizes.insert(name.into(), size);
        self
    }
}

/// Row pitch used when flattening multi-dimensional accesses (see
/// [`flat_offset`] and the interpreter's indexing).
pub const MD_ROW_PITCH: i64 = 1024;

/// The flat element offset the interpreter uses for a (possibly
/// multi-dimensional) index tuple: `fold(o, i → o·1024 + i)`.  Exposed so
/// replay tooling can address the same element the program wrote.  Returns
/// `None` for offsets that do not fit a `usize` (negative indices).
pub fn flat_offset(point: &[i64]) -> Option<usize> {
    if point.is_empty() {
        return Some(0);
    }
    let mut offset: i64 = 0;
    for &p in point {
        if point.len() > 1 {
            offset = offset.checked_mul(MD_ROW_PITCH)?.checked_add(p)?;
        } else {
            offset = p;
        }
    }
    usize::try_from(offset).ok()
}

/// Builds a deterministic input environment for an arbitrary program of the
/// class: every input array is filled with a seed-dependent pseudo-random
/// pattern and sized generously from the program's `#define` constants;
/// output parameter arrays get matching sizes.
///
/// Different `seed`s give genuinely different fills (a hash mix, not an
/// affine ramp), so value-level coincidences between two inequivalent
/// programs on one fill are broken by the next — the property the witness
/// replay relies on.
pub fn standard_inputs(program: &Program, seed: u64) -> Inputs {
    // Span: generous multiple of the largest #define (strides of 2 and small
    // shifts appear throughout the class).
    let base = program.defines.values().copied().max().unwrap_or(64).max(1);
    let span = (4 * base + 16) as usize;
    // Arrays accessed with d indices need pitch^(d-1) * span elements.
    let dims_of = |name: &str| -> usize {
        let mut dims = 1usize;
        for a in program.statements() {
            if a.lhs.array == name {
                dims = dims.max(a.lhs.indices.len());
            }
            for r in a.rhs.reads() {
                if r.array == name {
                    dims = dims.max(r.indices.len());
                }
            }
        }
        dims
    };
    let size_for = |name: &str| -> usize {
        let dims = dims_of(name);
        span * (MD_ROW_PITCH as usize).pow(dims.saturating_sub(1) as u32)
    };
    let mix = |seed: u64, salt: u64, i: u64| -> i64 {
        let mut h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(i);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 29;
        // Keep values small so products of several inputs stay far from
        // overflow.
        (h % 997) as i64 - 498
    };
    let roles = program.param_roles();
    let mut inputs = Inputs::new();
    for (salt, p) in program.params.iter().enumerate() {
        match roles.get(p.as_str()) {
            Some(crate::ast::ArrayRole::Input) => {
                let n = size_for(p);
                let data: Vec<i64> = (0..n as u64).map(|i| mix(seed, salt as u64, i)).collect();
                inputs = inputs.array(p.clone(), data);
            }
            _ => {
                inputs = inputs.output(p.clone(), size_for(p));
            }
        }
    }
    inputs
}

/// The memory state after executing a program: one flat vector per array.
/// Unwritten elements keep the sentinel [`Interpreter::UNINIT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    arrays: BTreeMap<String, Vec<i64>>,
}

impl Memory {
    /// The final contents of an array.
    pub fn array(&self, name: &str) -> Option<&[i64]> {
        self.arrays.get(name).map(|v| v.as_slice())
    }

    /// The value of one element, if the array exists and the index is in
    /// bounds.
    pub fn element(&self, name: &str, index: usize) -> Option<i64> {
        self.arrays.get(name).and_then(|v| v.get(index)).copied()
    }

    /// Names of all arrays in the memory.
    pub fn array_names(&self) -> impl Iterator<Item = &str> {
        self.arrays.keys().map(|s| s.as_str())
    }
}

/// Statistics collected during one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of assignment-statement instances executed.
    pub assignments: u64,
    /// Number of binary operations evaluated on the value level.
    pub operations: u64,
}

/// The interpreter.  Construct one per program, then call
/// [`Interpreter::run`].
#[derive(Debug, Clone)]
pub struct Interpreter<'p> {
    program: &'p Program,
}

impl<'p> Interpreter<'p> {
    /// Sentinel stored in array elements that were never written.
    pub const UNINIT: i64 = i64::MIN + 7;

    /// Creates an interpreter for a program.
    pub fn new(program: &'p Program) -> Self {
        Interpreter { program }
    }

    /// Executes the program on the given inputs.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Runtime`] on out-of-bounds accesses, missing
    /// inputs, non-constant sizes or division by zero.
    pub fn run(&self, inputs: &Inputs) -> Result<(Memory, ExecStats)> {
        if !self.program.symbolic_params.is_empty() {
            return Err(LangError::Runtime {
                message: format!(
                    "program has symbolic parameters ({}); instantiate them with \
                     `Program::with_param_values` before interpreting",
                    self.program
                        .symbolic_params
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        let mut arrays: BTreeMap<String, Vec<i64>> = BTreeMap::new();

        // Parameters: inputs come from the caller, outputs are allocated.
        for p in &self.program.params {
            if let Some(values) = inputs.arrays.get(p) {
                arrays.insert(p.clone(), values.clone());
            } else if let Some(&size) = inputs.output_sizes.get(p) {
                arrays.insert(p.clone(), vec![Self::UNINIT; size]);
            } else {
                return Err(LangError::Runtime {
                    message: format!("no value or size provided for parameter array `{p}`"),
                });
            }
        }
        // Local arrays: sizes from their declarations.
        for d in &self.program.decls {
            if d.dims.is_empty() {
                continue; // scalar iterator
            }
            let mut size = 1usize;
            for dim in &d.dims {
                let v = crate::parser::eval_const(dim, &self.program.defines).ok_or_else(|| {
                    LangError::Runtime {
                        message: format!("size of local array `{}` is not a constant", d.name),
                    }
                })?;
                if v <= 0 {
                    return Err(LangError::Runtime {
                        message: format!("local array `{}` has non-positive size {v}", d.name),
                    });
                }
                size *= v as usize;
            }
            arrays.insert(d.name.clone(), vec![Self::UNINIT; size]);
        }

        let mut state = State {
            arrays,
            scalars: BTreeMap::new(),
            defines: &self.program.defines,
            stats: ExecStats::default(),
            decl_dims: self
                .program
                .decls
                .iter()
                .filter(|d| !d.dims.is_empty())
                .map(|d| (d.name.clone(), d.dims.len()))
                .collect(),
        };
        state.exec_block(&self.program.body)?;
        Ok((
            Memory {
                arrays: state.arrays,
            },
            state.stats,
        ))
    }

    /// Convenience helper: runs the program and returns the named output
    /// array.
    ///
    /// # Errors
    ///
    /// Propagates [`Interpreter::run`] errors and reports a missing output.
    pub fn run_for_output(&self, inputs: &Inputs, output: &str) -> Result<Vec<i64>> {
        let (mem, _) = self.run(inputs)?;
        mem.array(output)
            .map(|s| s.to_vec())
            .ok_or_else(|| LangError::Runtime {
                message: format!("program has no array `{output}`"),
            })
    }
}

struct State<'p> {
    arrays: BTreeMap<String, Vec<i64>>,
    scalars: BTreeMap<String, i64>,
    defines: &'p BTreeMap<String, i64>,
    decl_dims: BTreeMap<String, usize>,
    stats: ExecStats,
}

impl State<'_> {
    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Assign(a) => {
                let value = self.eval(&a.rhs)?;
                let offset = self.flat_index(&a.lhs)?;
                let arr = self
                    .arrays
                    .get_mut(&a.lhs.array)
                    .ok_or_else(|| LangError::Runtime {
                        message: format!("unknown array `{}`", a.lhs.array),
                    })?;
                if offset >= arr.len() {
                    return Err(LangError::Runtime {
                        message: format!(
                            "write out of bounds: {}[{offset}] (size {})",
                            a.lhs.array,
                            arr.len()
                        ),
                    });
                }
                arr[offset] = value;
                self.stats.assignments += 1;
                Ok(())
            }
            Stmt::For(f) => {
                let init = self.eval(&f.init)?;
                self.scalars.insert(f.var.clone(), init);
                loop {
                    let l = self.eval(&f.cond.lhs)?;
                    let r = self.eval(&f.cond.rhs)?;
                    if !f.cond.op.eval(l, r) {
                        break;
                    }
                    self.exec_block(&f.body)?;
                    let next = self.scalars[&f.var] + f.step;
                    self.scalars.insert(f.var.clone(), next);
                }
                Ok(())
            }
            Stmt::If(i) => {
                let l = self.eval(&i.cond.lhs)?;
                let r = self.eval(&i.cond.rhs)?;
                if i.cond.op.eval(l, r) {
                    self.exec_block(&i.then_branch)
                } else {
                    self.exec_block(&i.else_branch)
                }
            }
        }
    }

    /// Computes the flat element offset of a (possibly multi-dimensional)
    /// array reference.  Multi-dimensional local arrays are stored row-major;
    /// parameter arrays are always flat (the class uses explicit flattening).
    ///
    /// Index arithmetic is *not* counted in [`ExecStats::operations`]; the
    /// statistic tracks value-level operations only, matching the paper's
    /// "3N additions" style of operation counting.
    fn flat_index(&mut self, r: &ArrayRef) -> Result<usize> {
        let saved_ops = self.stats.operations;
        let result = self.flat_index_inner(r);
        self.stats.operations = saved_ops;
        result
    }

    fn flat_index_inner(&mut self, r: &ArrayRef) -> Result<usize> {
        if r.indices.is_empty() {
            return Ok(0);
        }
        if r.indices.len() == 1 {
            let v = self.eval(&r.indices[0])?;
            return usize::try_from(v).map_err(|_| LangError::Runtime {
                message: format!("negative index {v} into `{}`", r.array),
            });
        }
        // Row-major for declared multi-dimensional locals.
        let _dims = self.decl_dims.get(&r.array).copied().unwrap_or(1);
        let mut offset: i64 = 0;
        for idx in &r.indices {
            let v = self.eval(idx)?;
            offset = offset * MD_ROW_PITCH + v; // fixed row pitch for md arrays
        }
        usize::try_from(offset).map_err(|_| LangError::Runtime {
            message: format!("negative flattened index into `{}`", r.array),
        })
    }

    fn eval(&mut self, e: &Expr) -> Result<i64> {
        match e {
            Expr::Const(v) => Ok(*v),
            Expr::Var(n) => {
                if let Some(v) = self.scalars.get(n) {
                    Ok(*v)
                } else if let Some(v) = self.defines.get(n) {
                    Ok(*v)
                } else {
                    Err(LangError::Runtime {
                        message: format!("unknown scalar `{n}`"),
                    })
                }
            }
            Expr::Neg(inner) => Ok(-self.eval(inner)?),
            Expr::Access(r) => {
                let offset = self.flat_index(r)?;
                let arr = self
                    .arrays
                    .get(&r.array)
                    .ok_or_else(|| LangError::Runtime {
                        message: format!("unknown array `{}`", r.array),
                    })?;
                let v = arr.get(offset).copied().ok_or_else(|| LangError::Runtime {
                    message: format!(
                        "read out of bounds: {}[{offset}] (size {})",
                        r.array,
                        arr.len()
                    ),
                })?;
                Ok(v)
            }
            Expr::Bin(op, l, r) => {
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                self.stats.operations += 1;
                match op {
                    BinOp::Add => Ok(lv.wrapping_add(rv)),
                    BinOp::Sub => Ok(lv.wrapping_sub(rv)),
                    BinOp::Mul => Ok(lv.wrapping_mul(rv)),
                    BinOp::Div => {
                        if rv == 0 {
                            Err(LangError::Runtime {
                                message: "division by zero".into(),
                            })
                        } else {
                            Ok(lv / rv)
                        }
                    }
                }
            }
            Expr::Call(name, args) => {
                let values = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>>>()?;
                self.stats.operations += 1;
                Ok(uninterpreted(name, &values))
            }
        }
    }
}

/// Deterministic semantics for uninterpreted functions: a hash-mix of the
/// function name and argument values.  Two calls agree iff name and argument
/// values agree, which is the congruence assumption the checker relies on.
fn uninterpreted(name: &str, args: &[i64]) -> i64 {
    let mut h: i64 = 0x9e37_79b9;
    for b in name.bytes() {
        h = h.wrapping_mul(31).wrapping_add(b as i64);
    }
    for &a in args {
        h = h.wrapping_mul(0x0100_0000_01b3).wrapping_add(a ^ (a >> 7));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{with_size, FIG1_A, FIG1_B, FIG1_C, FIG1_D};
    use crate::parser::parse_program;

    fn run_fig1(src: &str, n: usize) -> Vec<i64> {
        let p = parse_program(&with_size(src, n as i64)).unwrap();
        let a: Vec<i64> = (0..2 * n as i64).map(|i| 3 * i + 1).collect();
        let b: Vec<i64> = (0..2 * n as i64).map(|i| 7 * i - 5).collect();
        let inputs = Inputs::new().array("A", a).array("B", b).output("C", n);
        Interpreter::new(&p).run_for_output(&inputs, "C").unwrap()
    }

    #[test]
    fn fig1_a_computes_the_documented_expression() {
        // C[k] = B[2k] + B[k] + A[2k] + A[k]
        let n = 16;
        let c = run_fig1(FIG1_A, n);
        for k in 0..n as i64 {
            let a = |i: i64| 3 * i + 1;
            let b = |i: i64| 7 * i - 5;
            assert_eq!(c[k as usize], b(2 * k) + b(k) + a(2 * k) + a(k), "k = {k}");
        }
    }

    #[test]
    fn equivalent_versions_agree_and_the_erroneous_one_differs() {
        // Fig. 1(b) hard-codes the 512 split point, so the comparison must run
        // at the paper's native size N = 1024.
        let n = 1024;
        let ca = run_fig1(FIG1_A, n);
        let cb = run_fig1(FIG1_B, n);
        let cc = run_fig1(FIG1_C, n);
        let cd = run_fig1(FIG1_D, n);
        assert_eq!(ca, cb);
        assert_eq!(ca, cc);
        assert_ne!(ca, cd);
        // The paper: (d) computes the wrong expression on even k and the right
        // one on odd k.  At k = 0 the wrong expression happens to evaluate to
        // the same value (both read element 0 of A and B twice), so the
        // value-level difference shows up for even k >= 2.
        for k in 0..n {
            if k % 2 == 0 && k >= 2 {
                assert_ne!(ca[k], cd[k], "even k = {k} must differ");
            } else if k % 2 == 1 {
                assert_eq!(ca[k], cd[k], "odd k = {k} must agree");
            }
        }
    }

    #[test]
    fn stats_count_operations() {
        let n = 8;
        let p = parse_program(&with_size(FIG1_A, n)).unwrap();
        let inputs = Inputs::new()
            .array("A", vec![1; 2 * n as usize])
            .array("B", vec![2; 2 * n as usize])
            .output("C", n as usize);
        let (_, stats) = Interpreter::new(&p).run(&inputs).unwrap();
        // 3 loops of N iterations, one assignment each, one addition each.
        assert_eq!(stats.assignments, 3 * n as u64);
        assert_eq!(stats.operations, 3 * n as u64);
    }

    #[test]
    fn missing_input_and_out_of_bounds_are_reported() {
        let p = parse_program(&with_size(FIG1_A, 8)).unwrap();
        let err = Interpreter::new(&p).run(&Inputs::new()).unwrap_err();
        assert!(matches!(err, LangError::Runtime { .. }));
        // B too small: reading B[2k] for k = 7 needs 15 elements.
        let inputs = Inputs::new()
            .array("A", vec![0; 16])
            .array("B", vec![0; 4])
            .output("C", 8);
        let err = Interpreter::new(&p).run(&inputs).unwrap_err();
        match err {
            LangError::Runtime { message } => assert!(message.contains("out of bounds")),
            other => panic!("expected runtime error, got {other}"),
        }
    }

    #[test]
    fn uninterpreted_functions_are_deterministic_and_congruent() {
        assert_eq!(
            uninterpreted("absd", &[3, 5]),
            uninterpreted("absd", &[3, 5])
        );
        assert_ne!(
            uninterpreted("absd", &[3, 5]),
            uninterpreted("absd", &[5, 3])
        );
        assert_ne!(
            uninterpreted("absd", &[3, 5]),
            uninterpreted("clip", &[3, 5])
        );
        let src = r#"
void f(int A[], int C[]) {
    int k;
    for (k = 0; k < 4; k++)
s1:     C[k] = absd(A[k], A[k + 1]) + 1;
}
"#;
        let p = parse_program(src).unwrap();
        let inputs = Inputs::new().array("A", vec![5, 1, 9, 2, 7]).output("C", 4);
        let out = Interpreter::new(&p).run_for_output(&inputs, "C").unwrap();
        assert_eq!(out[0], uninterpreted("absd", &[5, 1]) + 1);
    }

    #[test]
    fn standard_inputs_run_every_corpus_program() {
        for (name, src) in crate::corpus::FIG1_ALL
            .iter()
            .chain(crate::corpus::KERNELS.iter())
        {
            let p = parse_program(src).unwrap();
            for seed in [0u64, 1, 2] {
                let inputs = standard_inputs(&p, seed);
                let (mem, _) = Interpreter::new(&p)
                    .run(&inputs)
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                for out in p.output_arrays() {
                    assert!(mem.array(&out).is_some(), "{name}: missing output {out}");
                }
            }
            // Different seeds produce different input data.
            let a = standard_inputs(&p, 0);
            let b = standard_inputs(&p, 1);
            if let Some(name) = p.input_arrays().first() {
                assert_ne!(a.arrays[name], b.arrays[name]);
            }
        }
    }

    #[test]
    fn flat_offset_matches_interpreter_addressing() {
        assert_eq!(flat_offset(&[7]), Some(7));
        assert_eq!(flat_offset(&[2, 3]), Some(2 * 1024 + 3));
        assert_eq!(flat_offset(&[-1]), None);
        assert_eq!(flat_offset(&[]), Some(0));
    }

    #[test]
    fn recurrence_kernel_runs() {
        let p = parse_program(crate::corpus::KERNEL_RECURRENCE).unwrap();
        let n = 128usize;
        let x: Vec<i64> = (0..n as i64).collect();
        let inputs = Inputs::new().array("X", x.clone()).output("Y", n);
        let y = Interpreter::new(&p).run_for_output(&inputs, "Y").unwrap();
        let mut acc = 0;
        for k in 0..n {
            acc += x[k];
            assert_eq!(y[k], acc);
        }
    }
}
